package basket

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestScalableInsertExtract(t *testing.T) {
	b := NewScalable[int](4, 4)
	if !b.Insert(0, 10) {
		t.Fatal("first insert failed")
	}
	if b.Insert(0, 11) {
		t.Fatal("second insert into same cell succeeded")
	}
	if !b.Insert(3, 30) {
		t.Fatal("insert into cell 3 failed")
	}
	got := map[int]bool{}
	for {
		v, ok := b.Extract()
		if !ok {
			break
		}
		got[v] = true
	}
	if len(got) != 2 || !got[10] || !got[30] {
		t.Fatalf("extracted %v", got)
	}
	if !b.Empty() {
		t.Fatal("exhausted basket not empty")
	}
}

func TestScalableEmptyBitFastPath(t *testing.T) {
	b := NewScalable[int](2, 2)
	b.Extract()
	b.Extract()
	if !b.Empty() {
		t.Fatal("empty bit not set after exhaustion")
	}
	before := b.counter.Load()
	if _, ok := b.Extract(); ok {
		t.Fatal("extract from empty basket succeeded")
	}
	if b.counter.Load() != before {
		t.Fatal("extract after empty bit still touched the counter")
	}
}

func TestScalableInsertAfterSweepFails(t *testing.T) {
	b := NewScalable[int](2, 2)
	for {
		if _, ok := b.Extract(); !ok {
			break
		}
	}
	if b.Insert(1, 5) {
		t.Fatal("insert succeeded after its cell was swept")
	}
}

func TestScalableResetOwn(t *testing.T) {
	b := NewScalable[int](2, 2)
	b.Insert(0, 7)
	b.ResetOwn(0)
	if !b.Insert(0, 8) {
		t.Fatal("insert after ResetOwn failed")
	}
	v, ok := b.Extract()
	if !ok || v != 8 {
		t.Fatalf("got %d,%v want 8,true", v, ok)
	}
}

func TestScalableBound(t *testing.T) {
	// capacity 8 but only 3 active inserters: extraction must stop at 3.
	b := NewScalable[int](8, 3)
	b.Insert(1, 11)
	n := 0
	for {
		if _, ok := b.Extract(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("extracted %d values, want 1", n)
	}
	if !b.Empty() {
		t.Fatal("bound-exhausted basket not empty")
	}
}

func TestScalableBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero capacity")
		}
	}()
	NewScalable[int](0, 0)
}

func TestScalableConcurrentNoLossNoDup(t *testing.T) {
	const n = 16
	b := NewScalable[int](n, n)
	var wg sync.WaitGroup
	inserted := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			inserted[i] = b.Insert(i, 100+i)
		}()
	}
	extracted := make(map[int]int)
	var mu sync.Mutex
	for e := 0; e < 4; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := b.Extract()
				if !ok {
					return
				}
				mu.Lock()
				extracted[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Drain any stragglers.
	for {
		v, ok := b.Extract()
		if !ok {
			break
		}
		extracted[v]++
	}
	for v, c := range extracted {
		if c != 1 {
			t.Fatalf("value %d extracted %d times", v, c)
		}
	}
	// Every successfully inserted value must be extracted or still be
	// extractable... the basket is exhausted now, so every inserted value
	// whose insert linearized before the sweep must be in extracted.
	// (Inserts racing the sweep legitimately fail.)
	for i, ok := range inserted {
		if ok && extracted[100+i] != 1 {
			t.Fatalf("inserted value %d lost", 100+i)
		}
	}
}

func TestClosingStackLIFO(t *testing.T) {
	s := NewClosingStack[int]()
	s.Insert(0, 1)
	s.Insert(0, 2)
	v, ok := s.Extract()
	if !ok || v != 2 {
		t.Fatalf("got %d,%v want 2,true (LIFO)", v, ok)
	}
	// Closed after first extraction.
	if s.Insert(0, 3) {
		t.Fatal("insert succeeded after extraction closed the basket")
	}
	v, ok = s.Extract()
	if !ok || v != 1 {
		t.Fatalf("got %d,%v want 1,true", v, ok)
	}
	if _, ok := s.Extract(); ok {
		t.Fatal("extract from drained stack succeeded")
	}
	if !s.Empty() {
		t.Fatal("drained closed stack not Empty")
	}
}

func TestClosingStackEmptyExtractCloses(t *testing.T) {
	s := NewClosingStack[int]()
	if _, ok := s.Extract(); ok {
		t.Fatal("extract from fresh stack succeeded")
	}
	if s.Insert(0, 1) {
		t.Fatal("insert succeeded after an extraction attempt closed the basket")
	}
}

func TestClosingStackResetOwn(t *testing.T) {
	s := NewClosingStack[int]()
	s.Insert(0, 1)
	s.Extract() // closes
	s.ResetOwn(0)
	if !s.Insert(0, 2) {
		t.Fatal("insert after reset failed")
	}
}

func TestClosingStackConcurrent(t *testing.T) {
	s := NewClosingStack[int]()
	var wg sync.WaitGroup
	accepted := make([]bool, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			accepted[i] = s.Insert(i, i)
		}()
	}
	wg.Wait()
	seen := map[int]bool{}
	for {
		v, ok := s.Extract()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
	for i, ok := range accepted {
		if ok && !seen[i] {
			t.Fatalf("accepted value %d lost", i)
		}
		if !ok && seen[i] {
			t.Fatalf("rejected value %d appeared", i)
		}
	}
}

// Property: for any interleaving of sequential inserts and extracts, the
// multiset of extracted values is a subset of accepted inserts, with no
// duplicates (both implementations).
func TestBasketProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		for _, mk := range []func() Basket[uint64]{
			func() Basket[uint64] { return NewScalable[uint64](8, 8) },
			func() Basket[uint64] { return NewClosingStack[uint64]() },
		} {
			b := mk()
			accepted := map[uint64]bool{}
			extracted := map[uint64]bool{}
			next := uint64(1)
			for _, op := range ops {
				if op%2 == 0 {
					id := int(op/2) % 8
					if b.Insert(id, next) {
						accepted[next] = true
					}
					next++
				} else {
					if v, ok := b.Extract(); ok {
						if extracted[v] || !accepted[v] {
							return false
						}
						extracted[v] = true
					}
				}
			}
			// Drain.
			for {
				v, ok := b.Extract()
				if !ok {
					break
				}
				if extracted[v] || !accepted[v] {
					return false
				}
				extracted[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
