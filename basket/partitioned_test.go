package basket

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPartitionedInsertExtract(t *testing.T) {
	b := NewPartitioned[int](8, 8, 4)
	for i := 0; i < 8; i += 2 {
		if !b.Insert(i, 100+i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	got := map[int]bool{}
	for {
		v, ok := b.Extract()
		if !ok {
			break
		}
		if got[v] {
			t.Fatalf("duplicate %d", v)
		}
		got[v] = true
	}
	if len(got) != 4 {
		t.Fatalf("extracted %d values, want 4", len(got))
	}
	if !b.Empty() {
		t.Fatal("exhausted basket not Empty")
	}
	if b.Insert(1, 1) {
		t.Fatal("insert after exhaustion succeeded")
	}
}

func TestPartitionedEmptyAfterExhaustionOnly(t *testing.T) {
	b := NewPartitioned[int](6, 6, 3)
	if b.Empty() {
		t.Fatal("fresh basket Empty")
	}
	// Drain all partitions.
	for {
		if _, ok := b.Extract(); !ok {
			if b.Empty() {
				break
			}
			// Extract may fail while other partitions remain; keep going.
		}
	}
	if _, ok := b.Extract(); ok {
		t.Fatal("extract after Empty succeeded")
	}
}

func TestPartitionedKClamping(t *testing.T) {
	b := NewPartitioned[int](4, 4, 100) // k clamped to 4
	if len(b.parts) != 4 {
		t.Fatalf("k = %d, want 4", len(b.parts))
	}
	b2 := NewPartitioned[int](4, 4, 0) // k clamped to 1
	if len(b2.parts) != 1 {
		t.Fatalf("k = %d, want 1", len(b2.parts))
	}
}

func TestPartitionedPartitionBounds(t *testing.T) {
	b := NewPartitioned[int](10, 10, 3)
	covered := make([]bool, 10)
	for pi := range b.parts {
		p := &b.parts[pi]
		for i := p.lo; i < p.hi; i++ {
			if covered[i] {
				t.Fatalf("cell %d in two partitions", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("cell %d uncovered", i)
		}
	}
}

func TestPartitionedBoundSmallerThanCapacity(t *testing.T) {
	b := NewPartitioned[int](16, 4, 2)
	b.Insert(1, 11)
	n := 0
	for {
		if _, ok := b.Extract(); !ok && b.Empty() {
			break
		} else if ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("extracted %d, want 1", n)
	}
}

func TestPartitionedResetOwn(t *testing.T) {
	b := NewPartitioned[int](4, 4, 2)
	b.Insert(2, 5)
	b.ResetOwn(2)
	if !b.Insert(2, 6) {
		t.Fatal("insert after reset failed")
	}
}

func TestPartitionedConcurrent(t *testing.T) {
	const n = 32
	b := NewPartitioned[int](n, n, 8)
	var wg sync.WaitGroup
	inserted := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			inserted[i] = b.Insert(i, 1000+i)
		}()
	}
	var mu sync.Mutex
	extracted := map[int]int{}
	for e := 0; e < 8; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := b.Extract()
				if !ok {
					if b.Empty() {
						return
					}
					continue
				}
				mu.Lock()
				extracted[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for v, c := range extracted {
		if c != 1 {
			t.Fatalf("value %d extracted %d times", v, c)
		}
	}
	for i, ok := range inserted {
		if ok && extracted[1000+i] != 1 {
			t.Fatalf("inserted value %d lost", 1000+i)
		}
	}
}

// Property: once Empty returns true, Extract never again succeeds — the
// invariant SBQ's linearizability rests on.
func TestPartitionedEmptyMonotoneProperty(t *testing.T) {
	f := func(ops []uint8, kRaw uint8) bool {
		k := int(kRaw)%4 + 1
		b := NewPartitioned[uint64](8, 8, k)
		sawEmpty := false
		next := uint64(1)
		for _, op := range ops {
			if op%3 == 0 {
				b.Insert(int(op/3)%8, next)
				next++
			} else {
				_, ok := b.Extract()
				if ok && sawEmpty {
					return false
				}
			}
			if b.Empty() {
				sawEmpty = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
