// Package basket defines the basket abstract data type of the paper's
// modular baskets queue (§5.2.1) and provides two implementations:
//
//   - Scalable: the paper's scalable basket (Algorithms 8-9) — per-inserter
//     cells for synchronization-free insertion, an FAA-scanned extraction
//     index, and an empty bit that lets exhausted baskets be skipped
//     without touching the contended counter.
//   - ClosingStack: a Treiber-stack basket that closes on first extraction,
//     modeling the original baskets queue's implicit basket and the
//     property that made that queue linearizable.
//
// A basket is a linearizable set: Insert may fail nondeterministically,
// Extract removes an arbitrary element, and Empty admits false negatives.
// Not every linearizable basket makes the baskets queue linearizable; see
// the package-level documentation of repro/queue/sbq for the property the
// queue relies on.
package basket

// Basket is the abstract data type of paper §5.2.1, extended with ResetOwn
// to support the node-reuse optimization of §5.2.2.
type Basket[T any] interface {
	// Insert attempts to add x on behalf of inserter id and reports
	// whether it succeeded. It may fail nondeterministically. Each
	// inserter id may be used by at most one goroutine at a time.
	Insert(id int, x T) bool
	// Extract removes and returns some element, or ok=false if the
	// basket is empty or exhausted.
	Extract() (x T, ok bool)
	// Empty reports whether the basket is empty; false negatives are
	// allowed (it may return false for an empty basket, never true for a
	// non-empty one).
	Empty() bool
	// ResetOwn undoes inserter id's single insertion. It must only be
	// called on a basket that was never shared with other goroutines
	// (the unpublished-node reuse of §5.2.2).
	ResetOwn(id int)
}

// Resettable is implemented by baskets that can be fully re-armed for
// reuse after being drained: Reset restores the just-constructed state
// (all cells insertable, counters zeroed, empty bit cleared) and drops
// any element references. It must only be called on a basket no other
// goroutine can still reach — the contract of the queues' pooled-node
// mode, which recycles nodes (and their baskets) through epoch-guarded
// freelists. All baskets in this package implement it.
type Resettable interface {
	Reset()
}
