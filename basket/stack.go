package basket

import "sync/atomic"

// snode is a Treiber-stack node.
type snode[T any] struct {
	v    T
	next *snode[T]
}

// stackState is the atomically-replaced state of a ClosingStack: the stack
// top plus a closed flag. Replacing whole state records makes the
// (pointer, closed) pair atomic without pointer tagging, which Go's GC
// forbids; the garbage collector absorbs the retired records.
type stackState[T any] struct {
	top    *snode[T]
	closed bool
}

// ClosingStack is a LIFO basket that refuses insertions once any element
// has been extracted. Viewed in the modular framework, this is the basket
// implicit in the original baskets queue, where the first dequeue of a
// basket sets the deleted bit that makes subsequent insertion CASs fail —
// the property that makes the queue linearizable (paper §5.2.2).
type ClosingStack[T any] struct {
	state atomic.Pointer[stackState[T]]
}

// NewClosingStack returns an empty, open stack basket.
func NewClosingStack[T any]() *ClosingStack[T] {
	s := &ClosingStack[T]{}
	s.state.Store(&stackState[T]{})
	return s
}

func (s *ClosingStack[T]) load() *stackState[T] { return s.state.Load() }

// Insert pushes x unless the basket has been closed by an extraction.
// The id parameter is unused; the stack has no per-inserter state.
//
//lf:hotpath
func (s *ClosingStack[T]) Insert(_ int, x T) bool {
	//lint:ignore allocfree the stack basket allocates per push by design: it models the original queue's implicit basket and is excluded from the zero-alloc pooled configurations
	n := &snode[T]{v: x}
	for {
		st := s.load()
		if st.closed {
			return false
		}
		n.next = st.top
		//lint:ignore casloop,allocfree Treiber push: contention is accounted by the enclosing queue's Basket* counters, and the state-record replacement allocates by design (the stack basket is excluded from the zero-alloc pooled configurations)
		if s.state.CompareAndSwap(st, &stackState[T]{top: n}) {
			return true
		}
	}
}

// Extract pops an element; the first successful extraction closes the
// basket to further insertions.
//
//lf:hotpath
func (s *ClosingStack[T]) Extract() (T, bool) {
	var zero T
	for {
		st := s.load()
		if st.top == nil {
			// Exhausted: close so Empty becomes accurate and inserts stop.
			//lint:ignore casloop,allocfree Treiber pop: contention is accounted by the enclosing queue's Basket* counters, and the state-record replacement allocates by design (the stack basket is excluded from the zero-alloc pooled configurations)
			if st.closed || s.state.CompareAndSwap(st, &stackState[T]{closed: true}) {
				return zero, false
			}
			continue
		}
		//lint:ignore allocfree state-record replacement allocates by design; the stack basket is excluded from the zero-alloc pooled configurations
		if s.state.CompareAndSwap(st, &stackState[T]{top: st.top.next, closed: true}) {
			return st.top.v, true
		}
	}
}

// Empty reports whether the basket is closed and drained.
//
//lf:hotpath
func (s *ClosingStack[T]) Empty() bool {
	st := s.load()
	return st.closed && st.top == nil
}

// ResetOwn reopens an unpublished basket by discarding its contents. Only
// legal before the basket is shared.
func (s *ClosingStack[T]) ResetOwn(_ int) {
	s.state.Store(&stackState[T]{})
}

// Reset reopens and empties the stack for reuse. Only legal on a basket
// no other goroutine can reach (see basket.Resettable). Unlike the
// array baskets this allocates one state record; the stack basket
// models the original queue's implicit basket and is not used by the
// zero-alloc pooled configurations.
func (s *ClosingStack[T]) Reset() {
	s.state.Store(&stackState[T]{})
}
