package basket

import (
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/obs"
)

// Partitioned is an extension beyond the paper: a basket with more
// scalable extraction, the future work its §8 calls for ("designing a
// basket with scalable dequeue operations").
//
// The paper's scalable basket funnels every extraction through one
// fetch-and-add, so SBQ's dequeues serialize exactly like FAA-based
// queues (§5.3.4). Partitioned splits the cells into K partitions, each
// with its own extraction counter: extractors start at a random partition
// and only fall over to others when theirs is exhausted, cutting
// contention on any one counter by ~K. A partition's last index marks it
// exhausted; the extractor that exhausts the K-th partition sets the
// global empty bit, preserving the property SBQ's linearizability needs —
// once the basket is indicated empty, every future Extract fails.
type Partitioned[T any] struct {
	cells []scell[T]
	parts []partition
	// exhausted counts fully-swept partitions; empty is set when it
	// reaches len(parts).
	exhausted atomic.Int64
	empty     atomic.Bool
	bound     int
	rec       obs.Recorder // nil unless telemetry is attached (WithRecorder)
	// ev/id carry the basket's lifecycle timeline: open at construction,
	// close when the empty bit is set (nil/0 unless the recorder is a
	// flight-recorder collector — see New in options.go).
	ev obs.EventRecorder
	id uint64
}

type partition struct {
	//lf:contended extractors assigned to this partition FAA the scan counter
	counter atomic.Uint64
	_       [56]byte
	lo, hi  int // cells [lo, hi)
	// Round the element to two full lines so neighboring partitions'
	// counters never share a line inside the parts slice.
	_ [48]byte
}

// NewPartitioned returns a basket with capacity cells, scanning the first
// bound on extraction, split into k partitions. k is clamped to [1,bound].
//
// Deprecated: use New with WithCapacity, WithBound and WithPartitions,
// which also accepts a telemetry recorder.
func NewPartitioned[T any](capacity, bound, k int) *Partitioned[T] {
	if capacity <= 0 {
		panic("basket: capacity must be positive")
	}
	if bound <= 0 || bound > capacity {
		bound = capacity
	}
	if k < 1 {
		k = 1
	}
	if k > bound {
		k = bound
	}
	b := &Partitioned[T]{cells: make([]scell[T], capacity), parts: make([]partition, k), bound: bound}
	for i := range b.parts {
		b.parts[i].lo = bound * i / k
		b.parts[i].hi = bound * (i + 1) / k
	}
	return b
}

// Insert publishes x in inserter id's private cell, exactly like the
// scalable basket.
//
//lf:hotpath
func (b *Partitioned[T]) Insert(id int, x T) bool {
	c := &b.cells[id]
	if c.state.Load() != cellInsert {
		if r := b.rec; r != nil {
			r.Inc(obs.BasketInsertFails)
		}
		return false
	}
	c.v = x
	ok := c.state.CompareAndSwap(cellInsert, cellFull)
	if r := b.rec; r != nil {
		if ok {
			r.Inc(obs.BasketInserts)
		} else {
			r.Inc(obs.BasketInsertFails)
		}
	}
	return ok
}

// Extract claims indices from a random home partition, falling over to
// the others only when it is exhausted.
//
//lf:hotpath
func (b *Partitioned[T]) Extract() (T, bool) {
	v, ok := b.extract()
	if r := b.rec; r != nil {
		if ok {
			r.Inc(obs.BasketExtracts)
		} else {
			r.Inc(obs.BasketExtractFails)
		}
	}
	return v, ok
}

func (b *Partitioned[T]) extract() (T, bool) {
	var zero T
	if b.empty.Load() {
		return zero, false
	}
	k := len(b.parts)
	home := int(rand.Uint64N(uint64(k)))
	for off := 0; off < k; off++ {
		p := &b.parts[(home+off)%k]
		n := uint64(p.hi - p.lo)
		for {
			idx := p.counter.Add(1) - 1
			if idx >= n {
				break // partition exhausted; fall over to the next
			}
			if idx == n-1 {
				// We claimed the partition's last index: it is exhausted
				// once this swap lands; account it exactly once.
				if b.exhausted.Add(1) == int64(k) {
					b.empty.Store(true)
					if ev := b.ev; ev != nil {
						ev.Event(obs.EvBasketClose, obs.LaneDefault, b.id)
					}
				}
			}
			c := &b.cells[p.lo+int(idx)]
			if c.state.Swap(cellEmpty) == cellFull {
				return c.v, true
			}
		}
	}
	return zero, false
}

// Empty reports the global empty bit; false negatives are allowed.
//
//lf:hotpath
func (b *Partitioned[T]) Empty() bool { return b.empty.Load() }

// ResetOwn returns inserter id's cell to the insertable state. Only legal
// on an unpublished basket.
func (b *Partitioned[T]) ResetOwn(id int) {
	b.cells[id].state.Store(cellInsert)
}

// Reset re-arms a drained basket for reuse: every cell back to the
// insertable state with its value dropped, all partition counters and
// the exhausted count zeroed, empty bit cleared. Only legal on a basket
// no other goroutine can reach (see basket.Resettable).
func (b *Partitioned[T]) Reset() {
	var zero T
	for i := range b.cells {
		c := &b.cells[i]
		c.v = zero
		c.state.Store(cellInsert)
	}
	for i := range b.parts {
		b.parts[i].counter.Store(0)
	}
	b.exhausted.Store(0)
	b.empty.Store(false)
}
