package basket

// This file empirically validates the paper's Theorem 5.3 — that the
// scalable basket is a linearizable implementation of the basket
// specification of §5.2.1 — by checking small concurrent histories
// against the sequential spec with an exhaustive Wing-Gong style search.
//
// Sequential spec (state: a set B):
//   - Insert(x)=true   adds x (x must not be present)
//   - Insert(x)=false  always legal (nondeterministic failure is allowed)
//   - Extract()=x      requires x in B; removes it
//   - Extract()=none   requires B empty
//   - Empty()=true     requires B empty
//   - Empty()=false    always legal (false negatives allowed)

import (
	"sync"
	"sync/atomic"
	"testing"
)

type bOpKind uint8

const (
	bInsert bOpKind = iota
	bExtract
	bEmpty
)

type bOp struct {
	kind       bOpKind
	arg        uint64 // insert argument
	val        uint64 // extract result
	ok         bool   // insert success / extract success / empty result
	start, end uint64
}

// linearizableBasket reports whether hist has a linearization obeying the
// basket spec. Exponential search; keep histories small (<= ~10 ops).
func linearizableBasket(hist []bOp) bool {
	n := len(hist)
	used := make([]bool, n)
	state := map[uint64]bool{}
	var dfs func(done int) bool
	dfs = func(done int) bool {
		if done == n {
			return true
		}
		// Earliest response among unused ops: any op whose invocation is
		// after that response cannot linearize before it.
		minEnd := ^uint64(0)
		for i, op := range hist {
			if !used[i] && op.end < minEnd {
				minEnd = op.end
			}
		}
		for i, op := range hist {
			if used[i] || op.start > minEnd {
				continue
			}
			// Try linearizing op next.
			legal := false
			var undo func()
			switch op.kind {
			case bInsert:
				if !op.ok {
					legal = true
					undo = func() {}
				} else if !state[op.arg] {
					legal = true
					state[op.arg] = true
					undo = func() { delete(state, op.arg) }
				}
			case bExtract:
				if op.ok {
					if state[op.val] {
						legal = true
						delete(state, op.val)
						undo = func() { state[op.val] = true }
					}
				} else if len(state) == 0 {
					legal = true
					undo = func() {}
				}
			case bEmpty:
				if !op.ok {
					legal = true
					undo = func() {}
				} else if len(state) == 0 {
					legal = true
					undo = func() {}
				}
			}
			if !legal {
				continue
			}
			used[i] = true
			if dfs(done + 1) {
				return true
			}
			used[i] = false
			undo()
		}
		return false
	}
	return dfs(0)
}

func TestLinCheckerSane(t *testing.T) {
	// A valid history.
	ok := []bOp{
		{kind: bInsert, arg: 1, ok: true, start: 0, end: 1},
		{kind: bExtract, val: 1, ok: true, start: 2, end: 3},
		{kind: bEmpty, ok: true, start: 4, end: 5},
	}
	if !linearizableBasket(ok) {
		t.Fatal("valid history rejected")
	}
	// Extract of a value never inserted.
	bad := []bOp{
		{kind: bInsert, arg: 1, ok: true, start: 0, end: 1},
		{kind: bExtract, val: 2, ok: true, start: 2, end: 3},
	}
	if linearizableBasket(bad) {
		t.Fatal("phantom extract accepted")
	}
	// Empty=true while an element is definitely present.
	bad2 := []bOp{
		{kind: bInsert, arg: 1, ok: true, start: 0, end: 1},
		{kind: bEmpty, ok: true, start: 2, end: 3},
	}
	if linearizableBasket(bad2) {
		t.Fatal("false empty accepted")
	}
	// Empty-extract while an element is definitely present.
	bad3 := []bOp{
		{kind: bInsert, arg: 1, ok: true, start: 0, end: 1},
		{kind: bExtract, ok: false, start: 2, end: 3},
	}
	if linearizableBasket(bad3) {
		t.Fatal("false empty-extract accepted")
	}
	// Concurrent insert/extract may order either way.
	conc := []bOp{
		{kind: bInsert, arg: 1, ok: true, start: 0, end: 10},
		{kind: bExtract, ok: false, start: 1, end: 2},
		{kind: bExtract, val: 1, ok: true, start: 3, end: 11},
	}
	if !linearizableBasket(conc) {
		t.Fatal("valid concurrent history rejected")
	}
}

// runBasketHistory executes a small randomized concurrent workload on b
// and returns the collected history (timestamps from one atomic clock).
func runBasketHistory(b Basket[uint64], seed int) []bOp {
	var clock atomic.Uint64
	tick := func() uint64 { return clock.Add(1) }
	const threads = 3
	histories := make([][]bOp, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		tid := tid
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := uint64(seed*977 + tid*131 + 1)
			rand := func(n uint64) uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng % n
			}
			for i := 0; i < 3; i++ {
				op := bOp{start: tick()}
				switch rand(3) {
				case 0:
					v := uint64(tid+1)*100 + uint64(i)
					op.kind = bInsert
					op.arg = v
					op.ok = b.Insert(tid, v)
				case 1:
					op.kind = bExtract
					op.val, op.ok = b.Extract()
				case 2:
					op.kind = bEmpty
					op.ok = b.Empty()
				}
				op.end = tick()
				histories[tid] = append(histories[tid], op)
			}
		}()
	}
	wg.Wait()
	var all []bOp
	for _, h := range histories {
		all = append(all, h...)
	}
	return all
}

// Theorem 5.3, empirically: every observed concurrent history of the
// scalable basket linearizes against the sequential basket spec.
func TestScalableBasketLinearizable(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	for seed := 0; seed < trials; seed++ {
		b := NewScalable[uint64](3, 3)
		h := runBasketHistory(b, seed)
		if !linearizableBasket(h) {
			t.Fatalf("seed %d: non-linearizable history: %+v", seed, h)
		}
	}
}

func TestPartitionedBasketLinearizableHistories(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	for seed := 0; seed < trials; seed++ {
		b := NewPartitioned[uint64](3, 3, 2)
		h := runBasketHistory(b, seed)
		if !linearizableBasket(h) {
			t.Fatalf("seed %d: non-linearizable history: %+v", seed, h)
		}
	}
}

func TestClosingStackLinearizableHistories(t *testing.T) {
	trials := 400
	if testing.Short() {
		trials = 60
	}
	for seed := 0; seed < trials; seed++ {
		b := NewClosingStack[uint64]()
		h := runBasketHistory(b, seed)
		if !linearizableBasket(h) {
			t.Fatalf("seed %d: non-linearizable history: %+v", seed, h)
		}
	}
}
