package basket

import "testing"

// The deprecated positional constructors are kept for source
// compatibility; these tests pin their clamping and behavior to the
// New(...Option) replacements so the aliases cannot drift.

func TestDeprecatedNewScalable(t *testing.T) {
	b := NewScalable[int](4, 2)
	for id := 0; id < 4; id++ {
		if !b.Insert(id, id) {
			t.Fatalf("Insert(%d) refused on a fresh basket", id)
		}
	}
	// bound=2: extraction sweeps only cells [0,2).
	seen := map[int]bool{}
	for {
		v, ok := b.Extract()
		if !ok {
			break
		}
		seen[v] = true
	}
	if len(seen) != 2 || !seen[0] || !seen[1] {
		t.Fatalf("bound=2 extraction returned %v, want {0,1}", seen)
	}
}

func TestDeprecatedNewScalableClampsBound(t *testing.T) {
	// Out-of-range bounds fall back to the capacity, as documented.
	for _, bound := range []int{0, -1, 99} {
		b := NewScalable[int](3, bound)
		if b.bound != 3 {
			t.Errorf("NewScalable(3, %d).bound = %d, want 3", bound, b.bound)
		}
	}
}

func TestDeprecatedNewScalableBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewScalable(0, 0) did not panic")
		}
	}()
	NewScalable[int](0, 0)
}

func TestDeprecatedNewPartitioned(t *testing.T) {
	b := NewPartitioned[int](6, 6, 3)
	if got := len(b.parts); got != 3 {
		t.Fatalf("NewPartitioned(6,6,3) built %d partitions, want 3", got)
	}
	for id := 0; id < 6; id++ {
		if !b.Insert(id, id) {
			t.Fatalf("Insert(%d) refused on a fresh basket", id)
		}
	}
	seen := map[int]bool{}
	for {
		v, ok := b.Extract()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate element %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 6 {
		t.Fatalf("extracted %d of 6 elements", len(seen))
	}
	if !b.Empty() {
		t.Fatal("drained partitioned basket not Empty")
	}
}

func TestDeprecatedNewPartitionedClampsK(t *testing.T) {
	// k is clamped to [1, bound].
	if got := len(NewPartitioned[int](4, 4, 0).parts); got != 1 {
		t.Errorf("k=0 built %d partitions, want 1", got)
	}
	if got := len(NewPartitioned[int](4, 2, 8).parts); got != 2 {
		t.Errorf("k=8,bound=2 built %d partitions, want 2", got)
	}
}

func TestDeprecatedNewPartitionedBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPartitioned(0, 0, 1) did not panic")
		}
	}()
	NewPartitioned[int](0, 0, 1)
}
