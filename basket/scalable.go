package basket

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Cell states for the scalable basket.
const (
	cellInsert uint32 = iota // reserved for its inserter
	cellFull                 // holds a value
	cellEmpty                // claimed by an extractor
)

// pad keeps adjacent cells off each other's cache lines; the paper's C
// implementation packs them, but extraction sweeps the array anyway and
// insertion is the hot synchronization-free path.
type scell[T any] struct {
	state atomic.Uint32
	v     T
	_     [40]byte
}

// Scalable is the paper's scalable basket (Algorithms 8-9): an array with
// one private cell per inserter, an extraction counter scanned with FAA,
// and an empty bit set by the extractor that claims the last index.
type Scalable[T any] struct {
	cells []scell[T]
	_     [40]byte
	//lf:contended every extraction FAAs the scan counter; keep it off the
	// cells header line that all inserters read
	counter atomic.Uint64
	_       [56]byte
	empty   atomic.Bool
	bound   int          // extraction scans cells[0:bound] (the active inserters)
	rec     obs.Recorder // nil unless telemetry is attached (WithRecorder)
	// ev/id carry the basket's lifecycle timeline: open at construction,
	// close when the empty bit is set (nil/0 unless the recorder is a
	// flight-recorder collector — see New in options.go).
	ev obs.EventRecorder
	id uint64
}

// NewScalable returns a basket with capacity cells, scanning only the
// first bound cells on extraction. The paper's evaluation fixes capacity
// at the machine's thread count and sets bound to the live enqueuer count
// (§6.1). bound must not exceed capacity.
//
// Deprecated: use New with WithCapacity and WithBound, which also accepts
// a telemetry recorder.
func NewScalable[T any](capacity, bound int) *Scalable[T] {
	if capacity <= 0 {
		panic("basket: capacity must be positive")
	}
	if bound <= 0 || bound > capacity {
		bound = capacity
	}
	return &Scalable[T]{cells: make([]scell[T], capacity), bound: bound}
}

// Insert publishes x in inserter id's private cell: synchronization-free
// in the sense that distinct inserters never contend with each other.
//
//lf:hotpath
func (b *Scalable[T]) Insert(id int, x T) bool {
	c := &b.cells[id]
	if c.state.Load() != cellInsert {
		if r := b.rec; r != nil {
			r.Inc(obs.BasketInsertFails)
		}
		return false
	}
	c.v = x
	ok := c.state.CompareAndSwap(cellInsert, cellFull)
	if r := b.rec; r != nil {
		if ok {
			r.Inc(obs.BasketInserts)
		} else {
			r.Inc(obs.BasketInsertFails)
		}
	}
	return ok
}

// Extract claims an index with FAA and takes whatever its inserter
// published, retrying past cells whose inserter never arrived. The
// extractor that claims the last index sets the empty bit.
//
//lf:hotpath
func (b *Scalable[T]) Extract() (T, bool) {
	v, ok := b.extract()
	if r := b.rec; r != nil {
		if ok {
			r.Inc(obs.BasketExtracts)
		} else {
			r.Inc(obs.BasketExtractFails)
		}
	}
	return v, ok
}

func (b *Scalable[T]) extract() (T, bool) {
	var zero T
	if b.empty.Load() {
		return zero, false
	}
	for {
		idx := b.counter.Add(1) - 1
		if idx >= uint64(b.bound) {
			return zero, false
		}
		if idx == uint64(b.bound)-1 {
			b.empty.Store(true)
			if ev := b.ev; ev != nil {
				ev.Event(obs.EvBasketClose, obs.LaneDefault, b.id)
			}
		}
		c := &b.cells[idx]
		if c.state.Swap(cellEmpty) == cellFull {
			return c.v, true
		}
	}
}

// Empty reports the empty bit; false negatives are allowed per the spec.
//
//lf:hotpath
func (b *Scalable[T]) Empty() bool { return b.empty.Load() }

// ResetOwn returns inserter id's cell to the insertable state. Only legal
// on an unpublished basket (node reuse, §5.2.2).
func (b *Scalable[T]) ResetOwn(id int) {
	b.cells[id].state.Store(cellInsert)
}

// Reset re-arms a drained basket for reuse: every cell back to the
// insertable state with its value dropped, scan counter zeroed, empty
// bit cleared. Only legal on a basket no other goroutine can reach (see
// basket.Resettable).
func (b *Scalable[T]) Reset() {
	var zero T
	for i := range b.cells {
		c := &b.cells[i]
		c.v = zero
		c.state.Store(cellInsert)
	}
	b.counter.Store(0)
	b.empty.Store(false)
}

// Capacity returns the number of cells.
func (b *Scalable[T]) Capacity() int { return len(b.cells) }
