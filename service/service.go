// Package service implements sbqd's core: a fault-tolerant, multi-tenant
// job-queue service built on the repository's native queues.
//
// Each tenant owns one queue built through repro/queue/registry (default
// entry "Sharded-FAA"); the queue carries job ids, and the service layers
// the durability machinery around it:
//
//   - Lease-based at-least-once delivery. Lease hands a worker a job plus
//     a monotonic token; the worker settles with Ack or Nack. A deadline
//     scanner reclaims leases whose TTL expired and redelivers the job, so
//     a worker crash loses nothing. Settlement consumes the token
//     atomically, so every job is acked at most once (the second settle
//     gets ErrNoSuchLease).
//   - Retry budget and dead-lettering. Redelivery pacing and the DLQ
//     decision reuse repro/internal/machine/policy: the same
//     policy.AbortBudget template the simulated machines use to bound the
//     HTM fast path bounds a job's delivery attempts — Decision.Fallback
//     routes the job to the tenant's dead-letter queue, Decision.Delay
//     (in abstract cycles, scaled by Config.BackoffUnit) paces the next
//     attempt. The service's fallback path is the DLQ, with exactly the
//     paper's discipline: bounded optimism, then a guaranteed slow path.
//   - Backpressure. A tenant's in-flight depth (queued + delayed +
//     leased) is bounded by Config.MaxInFlight; Submit over quota returns
//     *BackpressureError, which the HTTP layer maps to 429 + Retry-After.
//   - Graceful shutdown. Shutdown fences Submit/Lease (ErrDraining),
//     waits for in-flight leases to settle (force-expiring stragglers at
//     the context deadline), then checkpoints every unsettled job to
//     Config.SnapshotPath as JSON; New restores the checkpoint, so a
//     restart redelivers instead of losing.
//
// Telemetry flows through repro/internal/obs (SrvSubmits..SrvRejects
// counters, LeaseLatency/AckLatency series) and, when the configured
// recorder is a flight recorder, per-job timeline events
// (EvSrvSubmit..EvSrvDLQ). Every tenant additionally owns a private
// obs.Stats — teed with the service recorder via obs.Tee, so scopes stay
// additive — and each queue shard another, which MetricsCollection renders
// as a Prometheus /metrics page with tenant/queue/shard labels.
// Structured request logs (log/slog, per-kind sampling) are enabled by
// Config.Logger; GET /readyz reports drain state for orchestration.
package service

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"repro/internal/machine/policy"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/queue/registry"
)

// DefaultQueue is the registry entry tenants are built on when Config.Queue
// is empty.
const DefaultQueue = "Sharded-FAA"

// Config parameterizes a Service. The zero value is fully usable: every
// field documents its default.
type Config struct {
	// Queue is the registry entry backing each tenant ("" = DefaultQueue).
	Queue string
	// Shards is passed through to registry.Config.Shards (0 = the entry's
	// default).
	Shards int
	// Lanes is the number of producer lanes per tenant — concurrent
	// Submits spread across lanes round-robin, each lane owning one
	// registry producer view behind a mutex (HTTP handlers run on
	// arbitrary goroutines; producer views are single-goroutine). 0 = 4.
	Lanes int
	// LeaseTTL is how long a lease lives before the scanner reclaims it
	// (0 = 30s).
	LeaseTTL time.Duration
	// ScanInterval is the deadline-scanner period (0 = LeaseTTL/4,
	// clamped to [1ms, 1s]).
	ScanInterval time.Duration
	// RetryBudget is the delivery budget before a job dead-letters when
	// Backoff is nil (0 = 5). Ignored when Backoff is set.
	RetryBudget int
	// Backoff decides, after each failed delivery, whether to dead-letter
	// (Decision.Fallback) and how long to delay redelivery
	// (Decision.Delay cycles × BackoffUnit). Nil selects
	// policy.AbortBudget{Budget: RetryBudget, Inner:
	// policy.ExponentialBackoff{Base: 4, Max: 256}}.
	Backoff policy.RetryPolicy
	// BackoffUnit scales Decision.Delay cycles to wall time (0 = 1ms).
	BackoffUnit time.Duration
	// MaxInFlight bounds each tenant's unsettled depth (0 = 1<<16;
	// negative = unlimited).
	MaxInFlight int64
	// MaxTenants bounds how many tenants Submit may auto-create (0 = 1024;
	// negative = unlimited). Each tenant owns a full registry-built queue,
	// so over an open endpoint an unbounded tenant namespace is a memory-
	// exhaustion vector; Submit for a new tenant past the cap returns
	// ErrTenantLimit (HTTP 429). Restore counts checkpointed tenants
	// against the cap but never refuses them — persisted work always
	// comes back.
	MaxTenants int
	// SnapshotPath, when non-empty, is where Shutdown checkpoints
	// unsettled jobs and where New looks for a checkpoint to restore.
	SnapshotPath string
	// Recorder receives telemetry (nil = a private obs.Stats, readable
	// through Stats). Independent of Recorder, every tenant owns a private
	// obs.Stats that the /metrics exporter reads per tenant and per queue
	// shard (see MetricsCollection); Recorder additionally receives the
	// service-wide aggregate of everything those scopes record.
	Recorder obs.Recorder
	// Logger, when non-nil, receives structured job-lifecycle records
	// (log/slog): submit, lease, ack, nack, expire, dead-letter, reject,
	// plus unsampled service lifecycle records (restore, shutdown, backend
	// swaps). Nil disables logging entirely.
	Logger *slog.Logger
	// LogEvery samples the high-rate job-event records (submit, lease,
	// ack, nack, expire): 1 in every LogEvery occurrences of each kind is
	// logged (0 or 1 = every one). Dead-letter, reject, and lifecycle
	// records are never sampled — they are rare and always interesting.
	LogEvery int
	// Now is the clock (nil = time.Now). Tests and the chaos harness
	// inject it to force expiries deterministically.
	Now func() time.Time
	// Seed seeds backoff jitter (0 = 1).
	Seed uint64
}

func (cfg Config) withDefaults() Config {
	if cfg.Queue == "" {
		cfg.Queue = DefaultQueue
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 4
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.ScanInterval <= 0 {
		cfg.ScanInterval = cfg.LeaseTTL / 4
		if cfg.ScanInterval < time.Millisecond {
			cfg.ScanInterval = time.Millisecond
		}
		if cfg.ScanInterval > time.Second {
			cfg.ScanInterval = time.Second
		}
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 5
	}
	if cfg.Backoff == nil {
		cfg.Backoff = policy.AbortBudget{
			Budget: cfg.RetryBudget,
			Inner:  policy.ExponentialBackoff{Base: 4, Max: 256},
		}
	}
	if cfg.BackoffUnit <= 0 {
		cfg.BackoffUnit = time.Millisecond
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 1 << 16
	}
	if cfg.MaxTenants == 0 {
		cfg.MaxTenants = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Service lifecycle states.
const (
	srvServing int32 = iota
	srvDraining
	srvStopped
)

// Service is the job-queue daemon core. All methods are safe for
// concurrent use.
type Service struct {
	cfg   Config
	rec   obs.Recorder
	ev    obs.EventRecorder
	stats *obs.Stats // rec when the recorder is counter-readable, else nil
	log   *srvLogger // nil when Config.Logger is nil (methods are nil-safe)
	now   func() time.Time
	rng   lockedRNG

	metricsOnce sync.Once
	metrics     *export.Collection // lazily built; windows persist across scrapes

	state atomic.Int32   // srvServing → srvDraining → srvStopped
	opWG  sync.WaitGroup // in-flight Submit/Lease calls (shutdown fence)

	nextID    atomic.Uint64
	nextToken atomic.Uint64
	inFlight  atomic.Int64 // outstanding lease tokens, settled post-state

	tmu     sync.Mutex
	tenants map[string]*tenant

	// lmu guards the lease table and both timer heaps. Lock ordering:
	// lmu and job.mu are never held together; tenant.jmu is never held
	// with either.
	lmu       sync.Mutex
	leases    map[uint64]*job
	deadlines tokenHeap
	delayed   jobHeap

	scanStop chan struct{}
	scanDone chan struct{}
}

// New builds a Service, restores Config.SnapshotPath if a checkpoint is
// present, and starts the deadline scanner.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if _, ok := registry.LookupEntry(cfg.Queue); !ok {
		return nil, fmt.Errorf("service: unknown queue %q (have %v)", cfg.Queue, registry.Names())
	}
	s := &Service{
		cfg:      cfg,
		now:      cfg.Now,
		tenants:  map[string]*tenant{},
		leases:   map[uint64]*job{},
		scanStop: make(chan struct{}),
		scanDone: make(chan struct{}),
	}
	s.rng.s = cfg.Seed
	s.log = newSrvLogger(cfg.Logger, cfg.LogEvery)
	if cfg.Recorder == nil {
		s.stats = obs.New()
		s.rec = s.stats
	} else {
		s.rec = obs.Normalize(cfg.Recorder)
		if st, ok := s.rec.(*obs.Stats); ok {
			s.stats = st
		}
		s.ev = obs.Events(s.rec)
	}
	if cfg.SnapshotPath != "" {
		if err := s.restore(cfg.SnapshotPath); err != nil {
			return nil, err
		}
	}
	go s.scanLoop()
	return s, nil
}

// lockedRNG is an xorshift64* stream behind a mutex — backoff jitter is
// far off the hot path.
type lockedRNG struct {
	mu sync.Mutex
	s  uint64
}

func (r *lockedRNG) randN(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	r.mu.Lock()
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	v := r.s * 0x2545F4914F6CDD1D
	r.mu.Unlock()
	return v % n
}

// begin is the shutdown fence for Submit and Lease: it registers the call
// with opWG before checking the state, so Shutdown's state-flip +
// opWG.Wait() pair cannot miss an in-flight call.
func (s *Service) begin() error {
	s.opWG.Add(1)
	switch s.state.Load() {
	case srvServing:
		return nil
	case srvDraining:
		s.opWG.Done()
		return ErrDraining
	default:
		s.opWG.Done()
		return ErrStopped
	}
}

// tenantFor returns (creating if asked) the named tenant.
func (s *Service) tenantFor(name string, create bool) (*tenant, error) {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t, nil
	}
	if !create {
		return nil, nil
	}
	if q := s.cfg.MaxTenants; q > 0 && len(s.tenants) >= q {
		return nil, fmt.Errorf("service: cannot create tenant %q (%d tenants, cap %d): %w",
			name, len(s.tenants), q, ErrTenantLimit)
	}
	t, err := s.newTenant(name, s.cfg.Queue)
	if err != nil {
		return nil, err
	}
	s.tenants[name] = t
	return t, nil
}

// Submit accepts a job for tenant, subject to the tenant's depth quota.
func (s *Service) Submit(tenantName string, payload json.RawMessage) (Job, error) {
	if err := s.begin(); err != nil {
		return Job{}, err
	}
	defer s.opWG.Done()
	t, err := s.tenantFor(tenantName, true)
	if err != nil {
		return Job{}, err
	}
	if q := s.cfg.MaxInFlight; q > 0 {
		if d := t.depth.Add(1); d > q {
			t.depth.Add(-1)
			t.rec.Inc(obs.SrvRejects)
			s.log.reject(t.name, d-1, q)
			return Job{}, &BackpressureError{
				Tenant: tenantName, Depth: d - 1, Quota: q,
				RetryAfter: s.cfg.LeaseTTL,
			}
		}
	} else {
		t.depth.Add(1)
	}
	j := &job{
		id:        s.nextID.Add(1),
		tenant:    t,
		payload:   payload,
		submitted: s.now(),
		state:     jsQueued,
	}
	out := j.external() // before publishing: a lease may mutate j at once
	t.jmu.Lock()
	t.jobs[j.id] = j
	t.jmu.Unlock()
	// Record the submit before the enqueue makes the job leasable: a worker
	// can lease the instant the id is in the queue, and the submit event
	// must carry the earlier timestamp or job-span reconstruction
	// (trace.AnalyzeJobs) would see a lease-before-submit chain.
	t.rec.Inc(obs.SrvSubmits)
	if s.ev != nil {
		s.ev.Event(obs.EvSrvSubmit, obs.LaneDefault, j.id)
	}
	s.log.submit(t.name, j.id)
	t.enqueue(j.id)
	return out, nil
}

// Lease hands the caller one job from tenant, or ok=false when the tenant's
// queue is empty. The returned lease must be settled with Ack or Nack
// before its deadline or the scanner reclaims and redelivers it.
func (s *Service) Lease(tenantName string) (Lease, bool, error) {
	if err := s.begin(); err != nil {
		return Lease{}, false, err
	}
	defer s.opWG.Done()
	t, err := s.tenantFor(tenantName, false)
	if err != nil || t == nil {
		return Lease{}, false, err
	}
	for {
		id, ok := t.dequeue()
		if !ok {
			return Lease{}, false, nil
		}
		t.jmu.Lock()
		j := t.jobs[id]
		t.jmu.Unlock()
		if j == nil {
			// The id outlived its job record (possible only after a
			// restore raced a duplicate checkpoint entry); skip it.
			continue
		}
		return s.lease(j), true, nil
	}
}

// lease transitions j to jsLeased under a fresh token and publishes the
// token in the lease table.
func (s *Service) lease(j *job) Lease {
	token := s.nextToken.Add(1)
	now := s.now()
	deadline := now.Add(s.cfg.LeaseTTL)

	j.mu.Lock()
	j.state = jsLeased
	j.attempts++
	j.token = token
	j.deadline = deadline
	first := !j.delivered
	j.delivered = true
	attempts := j.attempts
	out := Lease{Job: j.external(), Token: token, Deadline: deadline}
	j.mu.Unlock()

	s.inFlight.Add(1)
	s.lmu.Lock()
	s.leases[token] = j
	s.deadlines.push(tokenAt{at: deadline, token: token})
	s.lmu.Unlock()

	rec := j.tenant.rec
	rec.Inc(obs.SrvLeases)
	if attempts > 1 {
		rec.Inc(obs.SrvRedeliveries)
	}
	if first {
		rec.Observe(obs.LeaseLatency, uint64(now.Sub(j.submitted).Nanoseconds()))
	}
	if s.ev != nil {
		s.ev.Event(obs.EvSrvLease, obs.LaneDefault, j.id)
	}
	s.log.lease(j.tenant.name, j.id, token, attempts)
	return out
}

// takeLease atomically consumes token: exactly one caller (Ack, Nack, or
// the scanner) wins it. The winner owns the job's next transition and must
// decrement inFlight when that transition is complete.
func (s *Service) takeLease(token uint64) *job {
	s.lmu.Lock()
	j := s.leases[token]
	if j != nil {
		delete(s.leases, token)
	}
	s.lmu.Unlock()
	return j
}

// Ack settles a lease successfully: the job is done and will never be
// redelivered. A second Ack (or an Ack after expiry) gets ErrNoSuchLease.
func (s *Service) Ack(token uint64) error {
	if s.state.Load() == srvStopped {
		return ErrStopped
	}
	j := s.takeLease(token)
	if j == nil {
		return ErrNoSuchLease
	}
	now := s.now()
	j.mu.Lock()
	j.state = jsDone
	j.mu.Unlock()
	t := j.tenant
	t.jmu.Lock()
	delete(t.jobs, j.id)
	t.jmu.Unlock()
	t.depth.Add(-1)
	lat := uint64(now.Sub(j.submitted).Nanoseconds())
	t.rec.Inc(obs.SrvAcks)
	t.rec.Observe(obs.AckLatency, lat)
	if s.ev != nil {
		s.ev.Event(obs.EvSrvAck, obs.LaneDefault, j.id)
	}
	s.log.ack(t.name, j.id, lat)
	s.inFlight.Add(-1) // last: drain may proceed only once the job settled
	return nil
}

// Nack settles a lease unsuccessfully: the retry policy decides whether
// the job is redelivered (possibly delayed) or dead-lettered.
func (s *Service) Nack(token uint64) error {
	if s.state.Load() == srvStopped {
		return ErrStopped
	}
	j := s.takeLease(token)
	if j == nil {
		return ErrNoSuchLease
	}
	j.tenant.rec.Inc(obs.SrvNacks)
	if s.ev != nil {
		s.ev.Event(obs.EvSrvNack, obs.LaneDefault, j.id)
	}
	s.log.nack(j.tenant.name, j.id)
	s.redeliver(j, s.now())
	return nil
}

// redeliver routes a failed delivery (nack or expiry). The caller must
// have consumed the job's lease token via takeLease; redeliver finishes
// the transition and decrements inFlight.
func (s *Service) redeliver(j *job, now time.Time) {
	j.mu.Lock()
	attempts := j.attempts
	j.mu.Unlock()

	dec := s.cfg.Backoff.Decide(policy.Abort{Attempt: attempts, Requester: policy.NoRequester}, s.rng.randN)
	if dec.Fallback {
		s.deadLetter(j)
		s.inFlight.Add(-1)
		return
	}
	delay := time.Duration(dec.Delay) * s.cfg.BackoffUnit
	if delay <= 0 {
		j.mu.Lock()
		j.state = jsQueued
		j.mu.Unlock()
		j.tenant.enqueue(j.id)
		s.inFlight.Add(-1)
		return
	}
	nb := now.Add(delay)
	j.mu.Lock()
	j.state = jsDelayed
	j.notBefore = nb
	j.mu.Unlock()
	s.lmu.Lock()
	s.delayed.push(jobAt{at: nb, j: j})
	s.lmu.Unlock()
	s.inFlight.Add(-1)
}

// deadLetter moves j to its tenant's dead-letter queue.
func (s *Service) deadLetter(j *job) {
	j.mu.Lock()
	j.state = jsDead
	attempts := j.attempts
	j.mu.Unlock()
	t := j.tenant
	t.jmu.Lock()
	delete(t.jobs, j.id)
	t.dead = append(t.dead, j)
	t.jmu.Unlock()
	t.depth.Add(-1)
	t.rec.Inc(obs.SrvDLQ)
	if s.ev != nil {
		s.ev.Event(obs.EvSrvDLQ, obs.LaneDefault, j.id)
	}
	s.log.dlq(t.name, j.id, attempts)
}

// ScanOnce runs one deadline-scanner pass against the given clock reading:
// leases whose deadline passed are reclaimed and redelivered, delayed jobs
// whose pacing window passed are requeued. It returns the number of leases
// reclaimed. The background scanner calls it every ScanInterval.
func (s *Service) ScanOnce(now time.Time) int {
	return s.scanOnce(now, false)
}

// ForceExpire reclaims every outstanding lease and releases every delayed
// job regardless of deadline, as if all their timers had fired now. Unlike
// calling ScanOnce with a fabricated future clock, redelivery pacing is
// computed from the service's real clock, so a force-expired job's
// NotBefore stays near now rather than inheriting the fabricated offset
// (which a checkpoint would then persist, stranding the job in the delay
// heap after restore). Shutdown uses it at the drain deadline; the chaos
// harness uses it to force every in-flight ack to lose its token race.
func (s *Service) ForceExpire() int {
	return s.scanOnce(s.now(), true)
}

// scanOnce reclaims due timers. now is the redelivery pacing base and,
// when force is false, also the expiry cutoff; force pops every timer
// unconditionally.
func (s *Service) scanOnce(now time.Time, force bool) int {
	var expired []*job
	var release []*job
	s.lmu.Lock()
	for s.deadlines.len() > 0 && (force || !s.deadlines.min().at.After(now)) {
		e := s.deadlines.pop()
		j := s.leases[e.token]
		if j == nil {
			continue // settled before expiry; stale heap entry
		}
		delete(s.leases, e.token)
		expired = append(expired, j)
	}
	for s.delayed.len() > 0 && (force || !s.delayed.min().at.After(now)) {
		release = append(release, s.delayed.pop().j)
	}
	s.lmu.Unlock()

	for _, j := range expired {
		j.tenant.rec.Inc(obs.SrvExpired)
		if s.ev != nil {
			s.ev.Event(obs.EvSrvExpire, obs.LaneDefault, j.id)
		}
		s.log.expire(j.tenant.name, j.id)
		s.redeliver(j, now)
	}
	for _, j := range release {
		j.mu.Lock()
		j.state = jsQueued
		j.mu.Unlock()
		j.tenant.enqueue(j.id)
	}
	return len(expired)
}

// scanLoop is the background deadline scanner.
func (s *Service) scanLoop() {
	defer close(s.scanDone)
	tick := time.NewTicker(s.cfg.ScanInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.scanStop:
			return
		case <-tick.C:
			s.ScanOnce(s.now())
		}
	}
}
