package chaos

import (
	"context"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/export"
	"repro/service"
)

// TestLedgerAspects drives the checker with canned histories.
func TestLedgerAspects(t *testing.T) {
	l := newLedger()
	// 1: clean life. 2: lost. 3: dup ack. 4: phantom. 5: dead (ok).
	l.Submitted(1)
	l.Delivered(1)
	l.Acked(1)
	l.Submitted(2)
	l.Delivered(2)
	l.Submitted(3)
	l.Delivered(3)
	l.Acked(3)
	l.Acked(3)
	l.Delivered(4)
	l.Submitted(5)
	l.Delivered(5)
	l.Dead(5)

	vs := l.Check()
	want := map[uint64]ViolationKind{2: VLost, 3: VDupAck, 4: VPhantom}
	if len(vs) != len(want) {
		t.Fatalf("Check returned %d violations (%v), want %d", len(vs), vs, len(want))
	}
	for _, v := range vs {
		if want[v.JobID] != v.Kind {
			t.Errorf("job %d flagged %s, want %s", v.JobID, v.Kind, want[v.JobID])
		}
	}
	sub, del, ack, dead := l.Counts()
	if sub != 4 || del != 5 || ack != 3 || dead != 1 {
		t.Fatalf("Counts = %d/%d/%d/%d, want 4/5/3/1", sub, del, ack, dead)
	}
}

// TestArrivalsDeterministic checks the gap stream replays per seed and
// honors bursts.
func TestArrivalsDeterministic(t *testing.T) {
	start := time.Now()
	mk := func() *arrivals {
		return newArrivals(42, time.Millisecond, time.Second, 5, 3, start)
	}
	a, b := mk(), mk()
	zeros := 0
	for i := 0; i < 200; i++ {
		now := start.Add(time.Duration(i) * time.Millisecond)
		ga, gb := a.gap(now), b.gap(now)
		if ga != gb {
			t.Fatalf("gap %d diverged: %v vs %v", i, ga, gb)
		}
		if ga < 0 {
			t.Fatalf("gap %d negative: %v", i, ga)
		}
		if ga == 0 {
			zeros++
		}
	}
	// Every 5th arrival opens a 3-long burst: a solid fraction of gaps
	// must be the zero burst gaps.
	if zeros < 100 {
		t.Fatalf("only %d/200 zero gaps; bursts not firing", zeros)
	}
}

// TestRunSmallProfile is the in-tree smoke: a scaled-down profile with
// every scenario enabled must uphold every invariant. CI's service-smoke
// job runs the full short profile through cmd/sbqd -chaos.
func TestRunSmallProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	p := ShortProfile()
	p.Name = "test-small"
	p.Duration = 250 * time.Millisecond
	p.Clients = 200
	p.Workers = 8
	p.TraceOut = filepath.Join(t.TempDir(), "trace.json")
	p.MetricsAddr = "127.0.0.1:0"

	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("\n%s", rep)
	if !rep.Ok() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
	if rep.Submitted == 0 {
		t.Fatal("no jobs submitted; profile generated no load")
	}
	if rep.Delivered < rep.Submitted-rep.Dead {
		t.Fatalf("delivered %d < submitted-dead %d", rep.Delivered, rep.Submitted-rep.Dead)
	}
	if rep.Acked+rep.Dead != rep.Submitted {
		t.Fatalf("acked(%d) + dead(%d) != submitted(%d)", rep.Acked, rep.Dead, rep.Submitted)
	}
	if !rep.Restarted || rep.Swapped == 0 {
		t.Fatalf("scenarios did not fire: restarted=%v swapped=%d", rep.Restarted, rep.Swapped)
	}
	if rep.TracePath == "" {
		t.Fatal("trace was not written")
	}
	if rep.MetricsAddr == "" {
		t.Fatal("admin listener was not bound")
	}

	// Job-lifecycle acceptance: on a drop-free trace, every acked job must
	// show a complete submit→lease→ack chain, and the reconstructed retry
	// depths must agree with the ledger and the SrvRedeliveries counter.
	if rep.Dropped != 0 {
		t.Fatalf("flight recorder dropped %d events; raise Profile.TraceRing", rep.Dropped)
	}
	if rep.Jobs == nil {
		t.Fatal("no job-span reconstruction in report")
	}
	if got, want := rep.Jobs.Acked, int(rep.Acked); got != want {
		t.Fatalf("span reconstruction acked %d jobs, ledger acked %d", got, want)
	}
	if rep.Jobs.CompleteAcked != rep.Jobs.Acked {
		t.Fatalf("only %d/%d acked jobs have the full submit→lease→ack chain",
			rep.Jobs.CompleteAcked, rep.Jobs.Acked)
	}
	if got, want := rep.Jobs.Dead, int(rep.Dead); got != want {
		t.Fatalf("span reconstruction dead-lettered %d jobs, ledger %d", got, want)
	}
	if got, want := rep.Jobs.Redeliveries, int(rep.Redeliveries); got != want {
		t.Fatalf("span retry depths sum to %d redeliveries, counter says %d", got, want)
	}
	if rep.Jobs.Orphans != 0 {
		t.Fatalf("%d spans missing their submit event on a drop-free trace", rep.Jobs.Orphans)
	}
}

// TestAdminListener checks the standalone admin plane: it serves the
// current instance's /metrics and /readyz, and follows a swap of the world
// to a new instance.
func TestAdminListener(t *testing.T) {
	mk := func() *service.Service {
		s, err := service.New(service.Config{
			SnapshotPath: filepath.Join(t.TempDir(), "snap.json"),
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return s
	}
	w := &world{svc: mk()}
	addr, stop, err := startAdmin("127.0.0.1:0", w)
	if err != nil {
		t.Fatalf("startAdmin: %v", err)
	}
	defer stop()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != http.StatusOK {
		t.Fatalf("GET /metrics = %d: %s", code, body)
	} else if _, err := export.Parse(strings.NewReader(body)); err != nil {
		t.Fatalf("admin /metrics does not parse: %v", err)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("GET /readyz = %d before shutdown", code)
	}

	// Drain the instance: the admin plane must report it not ready, then
	// follow a swap to a fresh ready instance.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := w.svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz = %d after shutdown, want 503", code)
	}
	w.mu.Lock()
	w.svc = mk()
	w.mu.Unlock()
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("GET /readyz = %d after swap to fresh instance", code)
	}
}
