package chaos

import (
	"path/filepath"
	"testing"
	"time"
)

// TestLedgerAspects drives the checker with canned histories.
func TestLedgerAspects(t *testing.T) {
	l := newLedger()
	// 1: clean life. 2: lost. 3: dup ack. 4: phantom. 5: dead (ok).
	l.Submitted(1)
	l.Delivered(1)
	l.Acked(1)
	l.Submitted(2)
	l.Delivered(2)
	l.Submitted(3)
	l.Delivered(3)
	l.Acked(3)
	l.Acked(3)
	l.Delivered(4)
	l.Submitted(5)
	l.Delivered(5)
	l.Dead(5)

	vs := l.Check()
	want := map[uint64]ViolationKind{2: VLost, 3: VDupAck, 4: VPhantom}
	if len(vs) != len(want) {
		t.Fatalf("Check returned %d violations (%v), want %d", len(vs), vs, len(want))
	}
	for _, v := range vs {
		if want[v.JobID] != v.Kind {
			t.Errorf("job %d flagged %s, want %s", v.JobID, v.Kind, want[v.JobID])
		}
	}
	sub, del, ack, dead := l.Counts()
	if sub != 4 || del != 5 || ack != 3 || dead != 1 {
		t.Fatalf("Counts = %d/%d/%d/%d, want 4/5/3/1", sub, del, ack, dead)
	}
}

// TestArrivalsDeterministic checks the gap stream replays per seed and
// honors bursts.
func TestArrivalsDeterministic(t *testing.T) {
	start := time.Now()
	mk := func() *arrivals {
		return newArrivals(42, time.Millisecond, time.Second, 5, 3, start)
	}
	a, b := mk(), mk()
	zeros := 0
	for i := 0; i < 200; i++ {
		now := start.Add(time.Duration(i) * time.Millisecond)
		ga, gb := a.gap(now), b.gap(now)
		if ga != gb {
			t.Fatalf("gap %d diverged: %v vs %v", i, ga, gb)
		}
		if ga < 0 {
			t.Fatalf("gap %d negative: %v", i, ga)
		}
		if ga == 0 {
			zeros++
		}
	}
	// Every 5th arrival opens a 3-long burst: a solid fraction of gaps
	// must be the zero burst gaps.
	if zeros < 100 {
		t.Fatalf("only %d/200 zero gaps; bursts not firing", zeros)
	}
}

// TestRunSmallProfile is the in-tree smoke: a scaled-down profile with
// every scenario enabled must uphold every invariant. CI's service-smoke
// job runs the full short profile through cmd/sbqd -chaos.
func TestRunSmallProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	p := ShortProfile()
	p.Name = "test-small"
	p.Duration = 250 * time.Millisecond
	p.Clients = 200
	p.Workers = 8
	p.TraceOut = filepath.Join(t.TempDir(), "trace.json")

	rep, err := Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("\n%s", rep)
	if !rep.Ok() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
	if rep.Submitted == 0 {
		t.Fatal("no jobs submitted; profile generated no load")
	}
	if rep.Delivered < rep.Submitted-rep.Dead {
		t.Fatalf("delivered %d < submitted-dead %d", rep.Delivered, rep.Submitted-rep.Dead)
	}
	if rep.Acked+rep.Dead != rep.Submitted {
		t.Fatalf("acked(%d) + dead(%d) != submitted(%d)", rep.Acked, rep.Dead, rep.Submitted)
	}
	if !rep.Restarted || rep.Swapped == 0 {
		t.Fatalf("scenarios did not fire: restarted=%v swapped=%d", rep.Restarted, rep.Swapped)
	}
	if rep.TracePath == "" {
		t.Fatal("trace was not written")
	}
}
