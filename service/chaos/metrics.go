package chaos

import (
	"fmt"
	"net"
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/export"
)

// startAdmin binds Profile.MetricsAddr and serves the service's HTTP
// surface on it for the duration of the run — /metrics, /healthz,
// /readyz, /v1/stats and the rest. Requests resolve the service through
// the world per call, so the admin plane follows a mid-run restart to the
// new instance. It returns the bound address (useful with ":0") and a
// stop function.
func startAdmin(addr string, w *world) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("chaos: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		w.get().Handler().ServeHTTP(rw, r)
	})}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// metricsCrossCheck renders the harness's own recorder — which survives
// restarts and aggregates every service instance of the run — through the
// full exposition pipeline (Collection → text format → Parse) and requires
// the scraped counters to agree with the ledger. A disagreement means the
// telemetry plane dropped or invented events somewhere between the
// instrumentation site and the scrape, which no amount of green delivery
// invariants excuses.
func metricsCrossCheck(st *obs.Stats, submitted, acked uint64) []Violation {
	col := export.NewCollection()
	col.AddSnapshot(export.Labels{"scope": "chaos"}, st.Snapshot)
	var b strings.Builder
	if err := col.Write(&b); err != nil {
		return []Violation{{Kind: VMetrics, Detail: fmt.Sprintf("rendering exposition: %v", err)}}
	}
	sc, err := export.Parse(strings.NewReader(b.String()))
	if err != nil {
		return []Violation{{Kind: VMetrics, Detail: fmt.Sprintf("exposition does not parse: %v", err)}}
	}
	var out []Violation
	for _, c := range []struct {
		name string
		want uint64
	}{
		{export.CounterName(obs.SrvSubmits), submitted},
		{export.CounterName(obs.SrvAcks), acked},
	} {
		if got := sc.Sum(c.name); got != float64(c.want) {
			out = append(out, Violation{Kind: VMetrics,
				Detail: fmt.Sprintf("%s scraped %g, ledger counted %d", c.name, got, c.want)})
		}
	}
	return out
}
