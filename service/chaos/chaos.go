// Package chaos is the in-process fault-injection harness for the job-queue
// service (repro/service): thousands of simulated open-loop clients with
// bursty, diurnal arrivals drive a Service while the harness injects the
// failures the service claims to survive — workers crashing mid-lease, slow
// consumers holding leases past their TTL, forced lease expiry, a mid-run
// backend swap (the service-level analogue of switching HTM off and living
// on the fallback path), and a full shutdown/restart through the JSON
// checkpoint.
//
// Throughout, a ledger (see check.go) audits the delivery contract in the
// aspect-oriented style of repro/internal/linearize: at-least-once delivery
// (nothing accepted is lost), exactly-once settlement (no job acked twice),
// no phantom deliveries, and a bounded final drain. Tail latency (p50, p99,
// p999 of submit→first-delivery and submit→ack) comes from the obs
// histograms; with Profile.TraceOut set, the flight recorder captures the
// run as a Chrome trace.
package chaos

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine/policy"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/service"
)

// Profile parameterizes one chaos run.
type Profile struct {
	Name     string
	Duration time.Duration // submit-phase length; drain follows

	Clients int // open-loop producer goroutines
	Workers int // consumer goroutines
	Tenants int

	Queue  string // initial registry entry for every tenant
	SwapTo string // entry to swap every tenant to mid-run ("" = no swap)
	Shards int

	LeaseTTL    time.Duration
	MeanGap     time.Duration // per-client mean inter-submit gap
	BurstEvery  int           // every n-th arrival opens a burst (0 = off)
	BurstLen    int
	MaxInFlight int64

	CrashProb float64 // worker takes the lease and vanishes
	SlowProb  float64 // worker holds the lease past its TTL, then tries to ack
	NackProb  float64 // worker nacks

	RetryBudget      int
	ForceExpiryEvery time.Duration // period of forced lease expiry (ForceExpire; 0 = off)
	Restart          bool          // shutdown + checkpoint + restore mid-run

	DrainTimeout time.Duration
	Seed         uint64

	TraceOut string // Chrome trace path ("" = no trace)
	// TraceRing is the flight-recorder ring capacity in events (0 = 1<<18
	// when TraceOut is set). Job-span reconstruction needs every EvSrv*
	// event of the run; the default library ring (1<<14) drops under chaos
	// load, so the harness sizes it for drop-free capture.
	TraceRing   int
	SnapshotDir string // checkpoint dir ("" = a fresh temp dir)
	// MetricsAddr, when non-empty, binds an admin listener for the run
	// serving the service's HTTP surface — GET /metrics, /healthz,
	// /readyz, /v1/stats — so an external scraper (CI's metrics-smoke job,
	// sbqtop) can watch the run live. ":0" picks a free port; the bound
	// address is in Report.MetricsAddr.
	MetricsAddr string
}

// ShortProfile is the CI shape: a few hundred milliseconds of load with
// every scenario on, sized to finish in seconds under -race.
func ShortProfile() Profile {
	return Profile{
		Name:     "short",
		Duration: 400 * time.Millisecond,
		Clients:  1000, Workers: 16, Tenants: 3,
		Queue: "Sharded-FAA", SwapTo: "Sharded-SBQ",
		LeaseTTL:   50 * time.Millisecond,
		MeanGap:    50 * time.Millisecond,
		BurstEvery: 7, BurstLen: 4,
		MaxInFlight: 1 << 14,
		CrashProb:   0.03, SlowProb: 0.01, NackProb: 0.05,
		RetryBudget:      4,
		ForceExpiryEvery: 60 * time.Millisecond,
		Restart:          true,
		DrainTimeout:     10 * time.Second,
		Seed:             1,
	}
}

// StandardProfile is the longer soak: more clients, more tenants, the same
// scenario mix.
func StandardProfile() Profile {
	p := ShortProfile()
	p.Name = "standard"
	p.Duration = 2 * time.Second
	p.Clients, p.Workers, p.Tenants = 4000, 32, 8
	p.DrainTimeout = 30 * time.Second
	return p
}

func (p Profile) withDefaults() Profile {
	if p.Name == "" {
		p.Name = "custom"
	}
	if p.Duration <= 0 {
		p.Duration = 400 * time.Millisecond
	}
	if p.Clients <= 0 {
		p.Clients = 100
	}
	if p.Workers <= 0 {
		p.Workers = 8
	}
	if p.Tenants <= 0 {
		p.Tenants = 1
	}
	if p.Queue == "" {
		p.Queue = service.DefaultQueue
	}
	if p.LeaseTTL <= 0 {
		p.LeaseTTL = 50 * time.Millisecond
	}
	if p.MeanGap <= 0 {
		p.MeanGap = 10 * time.Millisecond
	}
	if p.RetryBudget <= 0 {
		p.RetryBudget = 4
	}
	if p.DrainTimeout <= 0 {
		p.DrainTimeout = 10 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.TraceRing <= 0 {
		p.TraceRing = 1 << 18
	}
	return p
}

// Report is the outcome of one chaos run. Ok reports whether every
// invariant held.
type Report struct {
	Profile string
	Elapsed time.Duration

	Submitted uint64 // accepted submits
	Rejected  uint64 // backpressured submits (not owed delivery)
	Delivered uint64 // leases handed to workers (≥ Submitted: redeliveries)
	Acked     uint64
	Dead      uint64 // dead-lettered after the retry budget

	Crashes       uint64 // injected worker crashes mid-lease
	SlowHolds     uint64 // injected past-TTL lease holds
	FailedSettles uint64 // acks/nacks that lost their token race (expiry, restart)

	Redeliveries uint64 // service counter: leases beyond a job's first
	Expired      uint64 // service counter: scanner-reclaimed leases
	Swapped      int    // tenants swapped to Profile.SwapTo
	Restarted    bool

	LeaseP50, LeaseP99, LeaseP999 float64 // submit→first delivery, ns
	AckP50, AckP99, AckP999       float64 // submit→ack, ns

	Violations []Violation
	TracePath  string

	// MetricsAddr is the bound admin address (Profile.MetricsAddr, with
	// ":0" resolved), or "" when no listener was requested.
	MetricsAddr string
	// Dropped counts flight-recorder ring entries lost before the drain;
	// nonzero means Jobs undercounts (raise Profile.TraceRing).
	Dropped uint64
	// Jobs is the per-job lifecycle reconstruction of the recorded trace
	// (nil without TraceOut): complete submit→lease→ack chains, retry
	// depth distribution, dead-letter paths.
	Jobs *trace.JobSpanStats
}

// Ok reports whether the run upheld every invariant.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// String renders the report as a short human-readable block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos %q: %s\n", r.Profile, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  submitted=%d rejected=%d delivered=%d acked=%d dead=%d\n",
		r.Submitted, r.Rejected, r.Delivered, r.Acked, r.Dead)
	fmt.Fprintf(&b, "  injected: crashes=%d slow-holds=%d failed-settles=%d\n",
		r.Crashes, r.SlowHolds, r.FailedSettles)
	fmt.Fprintf(&b, "  service: redeliveries=%d expired=%d swapped=%d restarted=%v\n",
		r.Redeliveries, r.Expired, r.Swapped, r.Restarted)
	fmt.Fprintf(&b, "  lease ns p50/p99/p999: %.0f/%.0f/%.0f  ack: %.0f/%.0f/%.0f\n",
		r.LeaseP50, r.LeaseP99, r.LeaseP999, r.AckP50, r.AckP99, r.AckP999)
	if r.Jobs != nil {
		fmt.Fprintf(&b, "  jobs: %d spans, acked=%d (complete-chain=%d), dead=%d, redeliveries=%d, max-retry=%d\n",
			r.Jobs.Jobs, r.Jobs.Acked, r.Jobs.CompleteAcked, r.Jobs.Dead, r.Jobs.Redeliveries, r.Jobs.MaxRetry)
	}
	if w := trace.DroppedWarning(r.Dropped); w != "" {
		fmt.Fprintf(&b, "  %s\n", strings.ReplaceAll(w, "\n", "\n  "))
	}
	if r.Ok() {
		fmt.Fprintf(&b, "  invariants: OK")
	} else {
		fmt.Fprintf(&b, "  INVARIANT VIOLATIONS (%d):\n", len(r.Violations))
		max := len(r.Violations)
		if max > 20 {
			max = 20
		}
		for _, v := range r.Violations[:max] {
			fmt.Fprintf(&b, "    %s\n", v)
		}
		if max < len(r.Violations) {
			fmt.Fprintf(&b, "    ... and %d more", len(r.Violations)-max)
		}
	}
	return b.String()
}

// world holds the current service instance. The RWMutex makes a restart
// atomic with respect to new operations: ops take the read side to pick up
// the instance, the restart takes the write side to replace it. Ops do not
// hold the lock across the service call — the service's own shutdown fence
// handles stragglers — so a slow worker cannot stall the restart.
type world struct {
	mu  sync.RWMutex
	svc *service.Service
}

func (w *world) get() *service.Service {
	w.mu.RLock()
	s := w.svc
	w.mu.RUnlock()
	return s
}

func tenantName(i int) string { return fmt.Sprintf("tenant-%d", i) }

// Run executes one chaos run and returns its report. The error is for
// harness failures (bad profile, unwritable trace); invariant violations
// are in the report.
func Run(p Profile) (*Report, error) {
	p = p.withDefaults()

	st := obs.New()
	var rec obs.Recorder = st
	var col *trace.Collector
	if p.TraceOut != "" {
		col = trace.New(trace.WithStats(st), trace.WithRingSize(p.TraceRing))
		col.SetMeta("workload", "chaos-"+p.Name)
		rec = col
	}

	dir := p.SnapshotDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "sbqd-chaos-*")
		if err != nil {
			return nil, fmt.Errorf("chaos: temp dir: %w", err)
		}
		defer os.RemoveAll(dir)
	}
	snapPath := filepath.Join(dir, "checkpoint.json")

	mk := func() (*service.Service, error) {
		return service.New(service.Config{
			Queue:       p.Queue,
			Shards:      p.Shards,
			LeaseTTL:    p.LeaseTTL,
			RetryBudget: p.RetryBudget,
			Backoff: policy.AbortBudget{
				Budget: p.RetryBudget,
				Inner:  policy.ExponentialBackoff{Base: 2, Max: 16},
			},
			BackoffUnit:  p.LeaseTTL / 16,
			MaxInFlight:  p.MaxInFlight,
			SnapshotPath: snapPath,
			Recorder:     rec,
			Seed:         p.Seed,
		})
	}

	w := &world{}
	var err error
	if w.svc, err = mk(); err != nil {
		return nil, err
	}

	led := newLedger()
	rep := &Report{Profile: p.Name, Restarted: false}

	if p.MetricsAddr != "" {
		addr, stop, err := startAdmin(p.MetricsAddr, w)
		if err != nil {
			return nil, err
		}
		defer stop()
		rep.MetricsAddr = addr
	}
	var rejected, crashes, slowHolds, failedSettles atomic.Uint64
	var drainMode atomic.Bool

	start := time.Now()
	deadline := start.Add(p.Duration)

	// Producers: open-loop arrivals until the deadline.
	var pwg sync.WaitGroup
	for c := 0; c < p.Clients; c++ {
		pwg.Add(1)
		go func(c int) {
			defer pwg.Done()
			ar := newArrivals(p.Seed+uint64(c)*0x9E3779B97F4A7C15, p.MeanGap, p.Duration,
				p.BurstEvery, p.BurstLen, start)
			tn := tenantName(c % p.Tenants)
			payload := []byte(fmt.Sprintf(`{"client":%d}`, c))
			for {
				now := time.Now()
				if !now.Before(deadline) {
					return
				}
				if g := ar.gap(now); g > 0 {
					if rem := deadline.Sub(now); g > rem {
						g = rem
					}
					time.Sleep(g)
					if !time.Now().Before(deadline) {
						return
					}
				}
				j, err := w.get().Submit(tn, payload)
				switch {
				case err == nil:
					led.Submitted(j.ID)
				default:
					// Backpressure, or the restart fence: either way the
					// submit was refused, so the job is not owed delivery.
					rejected.Add(1)
				}
			}
		}(c)
	}

	// Workers: lease/settle with injected faults until told to stop.
	stopWorkers := make(chan struct{})
	var wwg sync.WaitGroup
	for i := 0; i < p.Workers; i++ {
		wwg.Add(1)
		go func(i int) {
			defer wwg.Done()
			rng := p.Seed + 0xABCD<<32 + uint64(i)
			frand := func() float64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return float64((rng*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
			}
			tn := i % p.Tenants
			for {
				select {
				case <-stopWorkers:
					return
				default:
				}
				s := w.get()
				l, ok, err := s.Lease(tenantName(tn))
				if err != nil || !ok {
					tn = (tn + 1) % p.Tenants
					time.Sleep(200 * time.Microsecond)
					continue
				}
				led.Delivered(l.ID)
				if !drainMode.Load() {
					r := frand()
					switch {
					case r < p.CrashProb:
						// Crash mid-lease: vanish without settling. The
						// scanner must redeliver after the TTL.
						crashes.Add(1)
						continue
					case r < p.CrashProb+p.SlowProb:
						// Slow consumer: outlive the TTL, then try to ack
						// anyway. The ack must lose to the expiry.
						slowHolds.Add(1)
						time.Sleep(p.LeaseTTL + p.LeaseTTL/2)
					case r < p.CrashProb+p.SlowProb+p.NackProb:
						if s.Nack(l.Token) != nil {
							failedSettles.Add(1)
						}
						continue
					}
				}
				if err := s.Ack(l.Token); err == nil {
					led.Acked(l.ID)
				} else {
					failedSettles.Add(1)
				}
			}
		}(i)
	}

	// Scenario: periodic forced expiry.
	scenarioCtx, stopScenarios := context.WithCancel(context.Background())
	var swg sync.WaitGroup
	if p.ForceExpiryEvery > 0 {
		swg.Add(1)
		go func() {
			defer swg.Done()
			tick := time.NewTicker(p.ForceExpiryEvery)
			defer tick.Stop()
			for {
				select {
				case <-scenarioCtx.Done():
					return
				case <-tick.C:
					// Expire every lease now outstanding: every in-flight
					// ack must lose its race. ForceExpire paces the
					// redeliveries from the real clock, so forced jobs
					// requeue on the normal backoff schedule instead of
					// inheriting a fabricated future NotBefore.
					w.get().ForceExpire()
				}
			}
		}()
	}

	// Scenario: mid-run backend swap (HTM-disabled-mode analogue).
	if p.SwapTo != "" {
		swg.Add(1)
		go func() {
			defer swg.Done()
			select {
			case <-scenarioCtx.Done():
				return
			case <-time.After(p.Duration / 2):
			}
			for t := 0; t < p.Tenants; t++ {
				if err := w.get().SwapBackend(tenantName(t), p.SwapTo); err == nil {
					rep.Swapped++
				}
			}
		}()
	}

	// Scenario: mid-run restart through the checkpoint. readyViol is only
	// written here and only read after swg.Wait.
	var restartErr error
	var readyViol []Violation
	if p.Restart {
		swg.Add(1)
		go func() {
			defer swg.Done()
			select {
			case <-scenarioCtx.Done():
				return
			case <-time.After(p.Duration * 3 / 4):
			}
			w.mu.Lock()
			defer w.mu.Unlock()
			ctx, cancel := context.WithTimeout(context.Background(), 2*p.LeaseTTL)
			// Forced expiry at the deadline is expected here: workers hold
			// leases on purpose, and the checkpoint must carry their jobs.
			_ = w.svc.Shutdown(ctx)
			cancel()
			// Readiness must track the lifecycle exactly: the drained
			// instance stops reporting ready the moment its fence flips
			// (so a /readyz-keyed balancer stops routing), and the restored
			// instance reports ready as soon as New returns.
			if w.svc.Ready() {
				readyViol = append(readyViol, Violation{Kind: VReady,
					Detail: "old instance still ready after Shutdown"})
			}
			ns, err := mk()
			if err != nil {
				restartErr = err
				return
			}
			if !ns.Ready() {
				readyViol = append(readyViol, Violation{Kind: VReady,
					Detail: "restored instance not ready after New"})
			}
			w.svc = ns
			rep.Restarted = true
		}()
	}

	pwg.Wait() // submit phase over: producers ran the full Duration, so
	// the mid-run scenario timers (Duration/2, 3·Duration/4) have fired.
	drainMode.Store(true)
	stopScenarios() // force-expiry loops until cancelled
	swg.Wait()
	if restartErr != nil {
		close(stopWorkers)
		wwg.Wait()
		return nil, fmt.Errorf("chaos: mid-run restart failed: %w", restartErr)
	}

	// Drain: workers now ack everything; crashed leases expire via the
	// service's own scanner. All depths must reach zero in time.
	drainDeadline := time.Now().Add(p.DrainTimeout)
	drained := false
	for time.Now().Before(drainDeadline) {
		stats := w.get().Stats()
		total := stats.InFlight
		for _, t := range stats.Tenants {
			total += t.Depth
		}
		if total == 0 {
			drained = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stopWorkers)
	wwg.Wait()

	// Final shutdown must be clean: nothing is in flight.
	ctx, cancel := context.WithTimeout(context.Background(), p.DrainTimeout)
	shutErr := w.get().Shutdown(ctx)
	cancel()

	for t := 0; t < p.Tenants; t++ {
		for _, j := range w.get().DeadLetters(tenantName(t)) {
			led.Dead(j.ID)
		}
	}

	rep.Violations = led.Check()
	rep.Violations = append(rep.Violations, readyViol...)
	if !drained {
		rep.Violations = append(rep.Violations, Violation{Kind: VDrain,
			Detail: fmt.Sprintf("depth nonzero after %s", p.DrainTimeout)})
	}
	if shutErr != nil {
		rep.Violations = append(rep.Violations, Violation{Kind: VDrain,
			Detail: fmt.Sprintf("final shutdown not clean: %v", shutErr)})
	}

	rep.Elapsed = time.Since(start)
	rep.Submitted, rep.Delivered, rep.Acked, rep.Dead = led.Counts()
	rep.Violations = append(rep.Violations, metricsCrossCheck(st, rep.Submitted, rep.Acked)...)
	rep.Rejected = rejected.Load()
	rep.Crashes = crashes.Load()
	rep.SlowHolds = slowHolds.Load()
	rep.FailedSettles = failedSettles.Load()
	snap := st.Snapshot()
	rep.Redeliveries = snap.Counter(obs.SrvRedeliveries)
	rep.Expired = snap.Counter(obs.SrvExpired)
	lease := snap.Series[obs.LeaseLatency]
	ackS := snap.Series[obs.AckLatency]
	rep.LeaseP50, rep.LeaseP99, rep.LeaseP999 =
		lease.Quantile(0.50), lease.Quantile(0.99), lease.Quantile(0.999)
	rep.AckP50, rep.AckP99, rep.AckP999 =
		ackS.Quantile(0.50), ackS.Quantile(0.99), ackS.Quantile(0.999)

	if col != nil {
		tr := col.Snapshot()
		rep.Dropped = tr.Dropped
		rep.Jobs = trace.AnalyzeJobs(tr)
		f, err := os.Create(p.TraceOut)
		if err != nil {
			return rep, fmt.Errorf("chaos: trace out: %w", err)
		}
		defer f.Close()
		if err := tr.WriteChrome(f); err != nil {
			return rep, fmt.Errorf("chaos: writing trace: %w", err)
		}
		rep.TracePath = p.TraceOut
	}
	return rep, nil
}
