package chaos

import (
	"fmt"
	"sort"
	"sync"
)

// The ledger is the chaos harness's invariant checker, in the same
// aspect-oriented style as repro/internal/linearize: rather than one
// opaque pass/fail, each violated aspect of the delivery contract is
// reported separately, so a failure says which guarantee broke.
//
// Aspects, over the full run (including forced expiries, worker crashes,
// backend swaps, and service restarts):
//
//	VLost    — an accepted job ended the run neither acked nor
//	           dead-lettered (at-least-once delivery broke)
//	VDupAck  — a job was successfully acked more than once
//	           (exactly-once settlement broke)
//	VPhantom — a delivery carried a job id no client submitted
//	VBothWays — a job was both acked and dead-lettered
//	VDrain   — the final drain did not finish inside its deadline
//	VMetrics — the rendered /metrics exposition failed to parse, or a
//	           scraped service counter disagreed with the ledger (the
//	           telemetry plane lied about the run)
//	VReady   — GET /readyz-style readiness disagreed with the lifecycle
//	           around the restart (old instance ready after Shutdown, or
//	           new instance not ready after New)
type ViolationKind uint8

const (
	VLost ViolationKind = iota
	VDupAck
	VPhantom
	VBothWays
	VDrain
	VMetrics
	VReady
)

// String returns the aspect's short name.
func (k ViolationKind) String() string {
	switch k {
	case VLost:
		return "lost"
	case VDupAck:
		return "dup-ack"
	case VPhantom:
		return "phantom"
	case VBothWays:
		return "acked-and-dead"
	case VDrain:
		return "drain-timeout"
	case VMetrics:
		return "metrics-mismatch"
	case VReady:
		return "readiness"
	default:
		return fmt.Sprintf("ViolationKind(%d)", uint8(k))
	}
}

// Violation is one broken aspect, anchored to a job where applicable.
type Violation struct {
	Kind   ViolationKind
	JobID  uint64 // 0 for run-level violations (VDrain)
	Detail string
}

func (v Violation) String() string {
	if v.JobID == 0 {
		return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
	}
	return fmt.Sprintf("%s: job %d: %s", v.Kind, v.JobID, v.Detail)
}

// ledger tracks every job's observed lifecycle. All methods are safe for
// concurrent use; Check is called once, after the run quiesces.
type ledger struct {
	mu   sync.Mutex
	jobs map[uint64]*jobRec
}

type jobRec struct {
	submitted  bool
	deliveries uint32
	acks       uint32
	dead       bool
}

func newLedger() *ledger {
	return &ledger{jobs: map[uint64]*jobRec{}}
}

func (l *ledger) rec(id uint64) *jobRec {
	r := l.jobs[id]
	if r == nil {
		r = &jobRec{}
		l.jobs[id] = r
	}
	return r
}

// Submitted records an accepted Submit (rejected submits are not expected
// to be delivered and stay out of the ledger).
func (l *ledger) Submitted(id uint64) {
	l.mu.Lock()
	l.rec(id).submitted = true
	l.mu.Unlock()
}

// Delivered records one lease of id.
func (l *ledger) Delivered(id uint64) {
	l.mu.Lock()
	l.rec(id).deliveries++
	l.mu.Unlock()
}

// Acked records one successful Ack of id (failed settles are not acks).
func (l *ledger) Acked(id uint64) {
	l.mu.Lock()
	l.rec(id).acks++
	l.mu.Unlock()
}

// Dead records id ending in a dead-letter queue.
func (l *ledger) Dead(id uint64) {
	l.mu.Lock()
	l.rec(id).dead = true
	l.mu.Unlock()
}

// Check audits every job against the aspects and returns the violations,
// lowest job id first.
func (l *ledger) Check() []Violation {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Violation
	ids := make([]uint64, 0, len(l.jobs))
	for id := range l.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := l.jobs[id]
		switch {
		case !r.submitted:
			out = append(out, Violation{Kind: VPhantom, JobID: id,
				Detail: fmt.Sprintf("delivered %d times but never submitted", r.deliveries)})
			continue
		case r.acks > 1:
			out = append(out, Violation{Kind: VDupAck, JobID: id,
				Detail: fmt.Sprintf("acked %d times", r.acks)})
		case r.acks == 1 && r.dead:
			out = append(out, Violation{Kind: VBothWays, JobID: id,
				Detail: "both acked and dead-lettered"})
		case r.acks == 0 && !r.dead:
			out = append(out, Violation{Kind: VLost, JobID: id,
				Detail: fmt.Sprintf("accepted, delivered %d times, never settled", r.deliveries)})
		}
	}
	return out
}

// Counts returns (submitted, delivered, acked, dead) totals.
func (l *ledger) Counts() (submitted, delivered, acked, dead uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.jobs {
		if r.submitted {
			submitted++
		}
		delivered += uint64(r.deliveries)
		acked += uint64(r.acks)
		if r.dead {
			dead++
		}
	}
	return
}
