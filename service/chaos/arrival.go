package chaos

import (
	"math"
	"time"
)

// arrivals generates one client's open-loop inter-submit gaps: an
// exponential base process (so arrivals are Poisson per client and the
// aggregate over thousands of clients is genuinely bursty at short
// timescales), modulated two ways:
//
//   - diurnal: a sinusoid over the run — load swells mid-run to about
//     (1+diurnalAmp)× the mean rate and sags at the edges, the compressed
//     shape of a day of traffic;
//   - bursts: every burstEvery-th arrival starts a back-to-back train of
//     burstLen submits with zero gap, the retry-storm / thundering-herd
//     shape that backpressure exists for.
//
// The stream is deterministic per seed (xorshift64*), so a failing chaos
// run replays exactly.
type arrivals struct {
	rng        uint64
	mean       time.Duration
	start      time.Time
	period     time.Duration
	burstEvery int
	burstLen   int

	n     int // arrivals generated
	burst int // remaining zero-gap arrivals in the current burst
}

const diurnalAmp = 0.75

func newArrivals(seed uint64, mean, runLength time.Duration, burstEvery, burstLen int, start time.Time) *arrivals {
	if seed == 0 {
		seed = 1
	}
	return &arrivals{
		rng:        seed,
		mean:       mean,
		start:      start,
		period:     runLength,
		burstEvery: burstEvery,
		burstLen:   burstLen,
	}
}

func (a *arrivals) next64() uint64 {
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	return a.rng * 0x2545F4914F6CDD1D
}

// uniform returns a float in (0, 1].
func (a *arrivals) uniform() float64 {
	return (float64(a.next64()>>11) + 1) / float64(1<<53)
}

// gap returns the wait before this client's next submit at wall time now.
func (a *arrivals) gap(now time.Time) time.Duration {
	a.n++
	if a.burst > 0 {
		a.burst--
		return 0
	}
	if a.burstEvery > 0 && a.n%a.burstEvery == 0 {
		a.burst = a.burstLen
		return 0
	}
	// Exponential with mean a.mean, then slowed/sped by the diurnal rate.
	g := -math.Log(a.uniform()) * float64(a.mean)
	if a.period > 0 {
		t := now.Sub(a.start)
		rate := 1 + diurnalAmp*math.Sin(2*math.Pi*float64(t)/float64(a.period))
		if rate < 0.25 {
			rate = 0.25
		}
		g /= rate
	}
	return time.Duration(g)
}
