package service

import (
	"context"
	"errors"
	"time"

	"repro/internal/obs"
)

// ErrAlreadyDraining is returned by Shutdown when another Shutdown is
// already in progress (or has completed).
var ErrAlreadyDraining = errors.New("service: shutdown already in progress")

// Shutdown drains the service gracefully:
//
//  1. Fence: Submit and Lease start returning ErrDraining (in-flight
//     calls are waited out first, so the fence is exact).
//  2. Drain: wait for every outstanding lease to settle, running scanner
//     passes so naturally-expiring leases are reclaimed meanwhile. If ctx
//     expires first, force-expire the stragglers (their jobs go back to
//     queued/delayed/dead by the usual redelivery rules — nothing is
//     lost, the work just outlives this process).
//  3. Stop: Ack/Nack start returning ErrStopped, then every unsettled
//     job is checkpointed to Config.SnapshotPath (when set) so the next
//     New redelivers it.
//
// Shutdown returns nil on a clean drain and ctx.Err() when it had to
// force-expire; the checkpoint is written either way.
func (s *Service) Shutdown(ctx context.Context) error {
	if !s.state.CompareAndSwap(srvServing, srvDraining) {
		return ErrAlreadyDraining
	}
	s.log.lifecycle("shutdown: draining")
	s.opWG.Wait() // no Submit/Lease in flight past this point

	close(s.scanStop)
	<-s.scanDone

	drainErr := s.drainLeases(ctx)

	s.state.Store(srvStopped)
	s.log.lifecycle("shutdown: stopped", "forced", drainErr != nil)
	if s.cfg.SnapshotPath != "" {
		if err := s.checkpoint(s.cfg.SnapshotPath); err != nil {
			// Keep the drain outcome visible alongside the checkpoint
			// failure: the caller needs to know both that leases were
			// force-expired and that their jobs were not persisted.
			return errors.Join(drainErr, err)
		}
	}
	return drainErr
}

// drainLeases waits for inFlight to reach zero, reclaiming
// naturally-expiring leases itself (the background scanner is stopped).
// At the ctx deadline it force-expires everything still outstanding.
func (s *Service) drainLeases(ctx context.Context) error {
	poll := s.cfg.ScanInterval / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	for s.inFlight.Load() > 0 {
		select {
		case <-ctx.Done():
			// Force-expire: reclaim every outstanding lease regardless of
			// deadline, then wait for the redeliver transitions (which run
			// synchronously in ForceExpire) to settle inFlight to zero.
			// ForceExpire paces redelivery from the real clock, so the
			// checkpoint records NotBefore near now — not a fabricated
			// future that would strand restored jobs in the delay heap.
			s.ForceExpire()
			for s.inFlight.Load() > 0 {
				time.Sleep(time.Millisecond)
			}
			return ctx.Err()
		case <-time.After(poll):
			s.ScanOnce(s.now())
		}
	}
	return nil
}

// TenantStats is one tenant's depth breakdown.
type TenantStats struct {
	Tenant  string `json:"tenant"`
	Queue   string `json:"queue"` // current backend entry name
	Depth   int64  `json:"depth"` // queued + delayed + leased
	Queued  int    `json:"queued"`
	Leased  int    `json:"leased"`
	Delayed int    `json:"delayed"`
	Dead    int    `json:"dead"`
}

// StatsSnapshot is the service-wide view GET /v1/stats renders.
type StatsSnapshot struct {
	State    string `json:"state"`
	InFlight int64  `json:"in_flight"` // outstanding lease tokens

	Submits      uint64 `json:"submits"`
	Leases       uint64 `json:"leases"`
	Redeliveries uint64 `json:"redeliveries"`
	Acks         uint64 `json:"acks"`
	Nacks        uint64 `json:"nacks"`
	Expired      uint64 `json:"expired"`
	DLQ          uint64 `json:"dlq"`
	Rejects      uint64 `json:"rejects"`

	// Latency quantiles in nanoseconds, from the obs series: lease =
	// submit→first delivery, ack = submit→ack. Zero when the recorder is
	// not counter-readable or nothing was recorded.
	LeaseP50  float64 `json:"lease_p50_ns"`
	LeaseP99  float64 `json:"lease_p99_ns"`
	LeaseP999 float64 `json:"lease_p999_ns"`
	AckP50    float64 `json:"ack_p50_ns"`
	AckP99    float64 `json:"ack_p99_ns"`
	AckP999   float64 `json:"ack_p999_ns"`

	Tenants []TenantStats `json:"tenants"`
}

// Stats snapshots the service. Counter and quantile fields are populated
// only when the service owns (or was given) an *obs.Stats recorder.
func (s *Service) Stats() StatsSnapshot {
	out := StatsSnapshot{InFlight: s.inFlight.Load()}
	switch s.state.Load() {
	case srvServing:
		out.State = "serving"
	case srvDraining:
		out.State = "draining"
	default:
		out.State = "stopped"
	}
	if s.stats != nil {
		snap := s.stats.Snapshot()
		out.Submits = snap.Counter(obs.SrvSubmits)
		out.Leases = snap.Counter(obs.SrvLeases)
		out.Redeliveries = snap.Counter(obs.SrvRedeliveries)
		out.Acks = snap.Counter(obs.SrvAcks)
		out.Nacks = snap.Counter(obs.SrvNacks)
		out.Expired = snap.Counter(obs.SrvExpired)
		out.DLQ = snap.Counter(obs.SrvDLQ)
		out.Rejects = snap.Counter(obs.SrvRejects)
		lease := snap.Series[obs.LeaseLatency]
		ack := snap.Series[obs.AckLatency]
		out.LeaseP50, out.LeaseP99, out.LeaseP999 =
			lease.Quantile(0.50), lease.Quantile(0.99), lease.Quantile(0.999)
		out.AckP50, out.AckP99, out.AckP999 =
			ack.Quantile(0.50), ack.Quantile(0.99), ack.Quantile(0.999)
	}

	for _, t := range s.tenantList() {
		ts := TenantStats{Tenant: t.name, Queue: t.be.Load().queueName, Depth: t.depth.Load()}
		t.jmu.Lock()
		for _, j := range t.jobs {
			j.mu.Lock()
			st := j.state
			j.mu.Unlock()
			switch st {
			case jsQueued:
				ts.Queued++
			case jsLeased:
				ts.Leased++
			case jsDelayed:
				ts.Delayed++
			}
		}
		ts.Dead = len(t.dead)
		t.jmu.Unlock()
		out.Tenants = append(out.Tenants, ts)
	}
	return out
}

// DeadLetters returns tenantName's dead-letter queue, oldest first.
func (s *Service) DeadLetters(tenantName string) []Job {
	t, _ := s.tenantFor(tenantName, false)
	if t == nil {
		return nil
	}
	t.jmu.Lock()
	defer t.jmu.Unlock()
	out := make([]Job, len(t.dead))
	for i, j := range t.dead {
		out[i] = j.external()
	}
	return out
}
