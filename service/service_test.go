package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/machine/policy"
	"repro/service"
)

// fakeClock is a mutex-guarded manual clock for Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// immediateRetry is a budget-only policy: requeue with no delay until the
// budget, then dead-letter. Tests use it to drive DLQ paths without
// waiting out backoff windows.
func immediateRetry(budget int) policy.RetryPolicy {
	return policy.AbortBudget{Budget: budget, Inner: policy.ExponentialBackoff{}}
}

func mustService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	s, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSubmitLeaseAckRoundtrip(t *testing.T) {
	s := mustService(t, service.Config{})
	var tokens []uint64
	for i := 0; i < 3; i++ {
		j, err := s.Submit("acme", json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if j.ID == 0 || j.Tenant != "acme" {
			t.Fatalf("Submit %d returned %+v", i, j)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		l, ok, err := s.Lease("acme")
		if err != nil || !ok {
			t.Fatalf("Lease %d: ok=%v err=%v", i, ok, err)
		}
		if l.Attempts != 1 {
			t.Fatalf("lease %d: attempts = %d, want 1", i, l.Attempts)
		}
		if seen[l.ID] {
			t.Fatalf("job %d delivered twice", l.ID)
		}
		seen[l.ID] = true
		tokens = append(tokens, l.Token)
	}
	if _, ok, err := s.Lease("acme"); ok || err != nil {
		t.Fatalf("Lease on empty queue: ok=%v err=%v", ok, err)
	}
	for _, tok := range tokens {
		if err := s.Ack(tok); err != nil {
			t.Fatalf("Ack(%d): %v", tok, err)
		}
	}
	// Exactly-once ack: every second settlement fails.
	for _, tok := range tokens {
		if err := s.Ack(tok); !errors.Is(err, service.ErrNoSuchLease) {
			t.Fatalf("double Ack(%d) = %v, want ErrNoSuchLease", tok, err)
		}
		if err := s.Nack(tok); !errors.Is(err, service.ErrNoSuchLease) {
			t.Fatalf("Nack after Ack(%d) = %v, want ErrNoSuchLease", tok, err)
		}
	}
	st := s.Stats()
	if st.Submits != 3 || st.Leases != 3 || st.Acks != 3 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want submits=leases=acks=3, in_flight=0", st)
	}
}

func TestLeaseExpiryRedelivery(t *testing.T) {
	clk := newFakeClock()
	s := mustService(t, service.Config{
		LeaseTTL: time.Minute,
		Backoff:  immediateRetry(10),
		Now:      clk.Now,
	})
	if _, err := s.Submit("acme", json.RawMessage(`"job"`)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	l1, ok, _ := s.Lease("acme")
	if !ok {
		t.Fatal("first lease came back empty")
	}
	// Before the TTL nothing is reclaimed.
	clk.Advance(30 * time.Second)
	if n := s.ScanOnce(clk.Now()); n != 0 {
		t.Fatalf("ScanOnce before expiry reclaimed %d leases", n)
	}
	// Past the TTL the scanner reclaims and requeues.
	clk.Advance(31 * time.Second)
	if n := s.ScanOnce(clk.Now()); n != 1 {
		t.Fatalf("ScanOnce after expiry reclaimed %d leases, want 1", n)
	}
	l2, ok, _ := s.Lease("acme")
	if !ok {
		t.Fatal("job was not redelivered after expiry")
	}
	if l2.ID != l1.ID || l2.Attempts != 2 {
		t.Fatalf("redelivery = id %d attempts %d, want id %d attempts 2", l2.ID, l2.Attempts, l1.ID)
	}
	// The expired token is dead; the new one settles the job.
	if err := s.Ack(l1.Token); !errors.Is(err, service.ErrNoSuchLease) {
		t.Fatalf("Ack(expired token) = %v, want ErrNoSuchLease", err)
	}
	if err := s.Ack(l2.Token); err != nil {
		t.Fatalf("Ack(fresh token): %v", err)
	}
	st := s.Stats()
	if st.Expired != 1 || st.Redeliveries != 1 {
		t.Fatalf("stats = %+v, want expired=1 redeliveries=1", st)
	}
}

func TestNackDeadLettersAfterBudget(t *testing.T) {
	const budget = 3
	s := mustService(t, service.Config{Backoff: immediateRetry(budget)})
	j, err := s.Submit("acme", json.RawMessage(`"poison"`))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for attempt := 1; ; attempt++ {
		l, ok, err := s.Lease("acme")
		if err != nil {
			t.Fatalf("Lease: %v", err)
		}
		if !ok {
			break // dead-lettered, no longer delivered
		}
		if l.Attempts != attempt {
			t.Fatalf("attempt %d delivered with Attempts=%d", attempt, l.Attempts)
		}
		if attempt > budget {
			t.Fatalf("job delivered %d times, budget is %d", attempt, budget)
		}
		if err := s.Nack(l.Token); err != nil {
			t.Fatalf("Nack attempt %d: %v", attempt, err)
		}
	}
	dead := s.DeadLetters("acme")
	if len(dead) != 1 || dead[0].ID != j.ID || dead[0].Attempts != budget {
		t.Fatalf("dead letters = %+v, want job %d with %d attempts", dead, j.ID, budget)
	}
	st := s.Stats()
	if st.DLQ != 1 || st.Nacks != uint64(budget) || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want dlq=1 nacks=%d in_flight=0", st, budget)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Dead != 1 || st.Tenants[0].Depth != 0 {
		t.Fatalf("tenant stats = %+v, want dead=1 depth=0", st.Tenants)
	}
}

func TestBackpressure(t *testing.T) {
	s := mustService(t, service.Config{MaxInFlight: 2, Backoff: immediateRetry(5)})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("acme", nil); err != nil {
			t.Fatalf("Submit %d under quota: %v", i, err)
		}
	}
	_, err := s.Submit("acme", nil)
	var bp *service.BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("Submit over quota = %v, want *BackpressureError", err)
	}
	if bp.Quota != 2 || bp.RetryAfter <= 0 {
		t.Fatalf("backpressure error = %+v", bp)
	}
	// Tenants are isolated: another tenant still has room.
	if _, err := s.Submit("other", nil); err != nil {
		t.Fatalf("Submit to second tenant: %v", err)
	}
	// Settling a job frees quota.
	l, ok, _ := s.Lease("acme")
	if !ok {
		t.Fatal("lease under backpressure came back empty")
	}
	if err := s.Ack(l.Token); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if _, err := s.Submit("acme", nil); err != nil {
		t.Fatalf("Submit after ack freed quota: %v", err)
	}
	if st := s.Stats(); st.Rejects != 1 {
		t.Fatalf("stats rejects = %d, want 1", st.Rejects)
	}
}

func TestCheckpointRestoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sbqd.json")
	cfg := service.Config{SnapshotPath: path, Backoff: immediateRetry(10)}

	s1 := mustService(t, cfg)
	payloads := map[uint64]string{}
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf(`{"i":%d}`, i)
		j, err := s1.Submit("acme", json.RawMessage(p))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		payloads[j.ID] = p
	}
	j5, err := s1.Submit("beta", json.RawMessage(`"b"`))
	if err != nil {
		t.Fatalf("Submit beta: %v", err)
	}
	payloads[j5.ID] = `"b"`

	// Leave one lease unsettled so shutdown has to force-expire it.
	if _, ok, _ := s1.Lease("acme"); !ok {
		t.Fatal("lease came back empty")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s1.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with a hung lease = %v, want DeadlineExceeded", err)
	}
	if _, err := s1.Submit("acme", nil); !errors.Is(err, service.ErrStopped) {
		t.Fatalf("Submit after shutdown = %v, want ErrStopped", err)
	}

	// Restart: every unsettled job must come back, ids and payloads intact.
	s2 := mustService(t, cfg)
	got := map[uint64]string{}
	for _, tenant := range []string{"acme", "beta"} {
		for {
			l, ok, err := s2.Lease(tenant)
			if err != nil {
				t.Fatalf("Lease after restore: %v", err)
			}
			if !ok {
				break
			}
			if _, dup := got[l.ID]; dup {
				t.Fatalf("job %d delivered twice after restore", l.ID)
			}
			got[l.ID] = string(l.Payload)
			if err := s2.Ack(l.Token); err != nil {
				t.Fatalf("Ack after restore: %v", err)
			}
		}
	}
	if len(got) != len(payloads) {
		t.Fatalf("restored %d jobs, want %d (got %v)", len(got), len(payloads), got)
	}
	for id, p := range payloads {
		if got[id] != p {
			t.Fatalf("job %d payload = %q, want %q", id, got[id], p)
		}
	}
	// Fresh ids continue past the restored namespace.
	j, err := s2.Submit("acme", nil)
	if err != nil {
		t.Fatalf("Submit after restore: %v", err)
	}
	if j.ID <= j5.ID {
		t.Fatalf("post-restore id %d not beyond pre-restart ids (max %d)", j.ID, j5.ID)
	}
}

func TestSwapBackendLosesNothing(t *testing.T) {
	s := mustService(t, service.Config{Queue: "Sharded-FAA", Shards: 2})
	const n = 32
	want := map[uint64]bool{}
	for i := 0; i < n; i++ {
		j, err := s.Submit("acme", nil)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		want[j.ID] = true
	}
	if err := s.SwapBackend("acme", "Sharded-SBQ"); err != nil {
		t.Fatalf("SwapBackend: %v", err)
	}
	if got := s.Backend("acme"); got != "Sharded-SBQ" {
		t.Fatalf("Backend = %q after swap, want Sharded-SBQ", got)
	}
	for i := 0; i < n; i++ {
		l, ok, err := s.Lease("acme")
		if err != nil || !ok {
			t.Fatalf("Lease %d after swap: ok=%v err=%v", i, ok, err)
		}
		if !want[l.ID] {
			t.Fatalf("unknown or duplicate job %d after swap", l.ID)
		}
		delete(want, l.ID)
		if err := s.Ack(l.Token); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d jobs lost across the swap: %v", len(want), want)
	}
	if err := s.SwapBackend("acme", "no-such-queue"); err == nil {
		t.Fatal("SwapBackend to an unknown entry succeeded")
	}
	if err := s.SwapBackend("ghost", "Sharded-FAA"); err == nil {
		t.Fatal("SwapBackend on an unknown tenant succeeded")
	}
}

func TestGracefulShutdownDrainsCleanly(t *testing.T) {
	s := mustService(t, service.Config{})
	if _, err := s.Submit("acme", nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	l, ok, _ := s.Lease("acme")
	if !ok {
		t.Fatal("lease came back empty")
	}
	done := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		done <- s.Ack(l.Token)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with a settling worker = %v, want clean drain", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Ack during drain: %v", err)
	}
	if err := s.Shutdown(ctx); !errors.Is(err, service.ErrAlreadyDraining) {
		t.Fatalf("second Shutdown = %v, want ErrAlreadyDraining", err)
	}
	if _, _, err := s.Lease("acme"); !errors.Is(err, service.ErrStopped) {
		t.Fatalf("Lease after shutdown = %v, want ErrStopped", err)
	}
}

func TestNewRejectsUnknownQueue(t *testing.T) {
	if _, err := service.New(service.Config{Queue: "no-such-queue"}); err == nil {
		t.Fatal("New with an unknown queue entry succeeded")
	}
}
