package service_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/machine/policy"
	"repro/service"
)

// fakeClock is a mutex-guarded manual clock for Config.Now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// immediateRetry is a budget-only policy: requeue with no delay until the
// budget, then dead-letter. Tests use it to drive DLQ paths without
// waiting out backoff windows.
func immediateRetry(budget int) policy.RetryPolicy {
	return policy.AbortBudget{Budget: budget, Inner: policy.ExponentialBackoff{}}
}

func mustService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	s, err := service.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSubmitLeaseAckRoundtrip(t *testing.T) {
	s := mustService(t, service.Config{})
	var tokens []uint64
	for i := 0; i < 3; i++ {
		j, err := s.Submit("acme", json.RawMessage(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if j.ID == 0 || j.Tenant != "acme" {
			t.Fatalf("Submit %d returned %+v", i, j)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < 3; i++ {
		l, ok, err := s.Lease("acme")
		if err != nil || !ok {
			t.Fatalf("Lease %d: ok=%v err=%v", i, ok, err)
		}
		if l.Attempts != 1 {
			t.Fatalf("lease %d: attempts = %d, want 1", i, l.Attempts)
		}
		if seen[l.ID] {
			t.Fatalf("job %d delivered twice", l.ID)
		}
		seen[l.ID] = true
		tokens = append(tokens, l.Token)
	}
	if _, ok, err := s.Lease("acme"); ok || err != nil {
		t.Fatalf("Lease on empty queue: ok=%v err=%v", ok, err)
	}
	for _, tok := range tokens {
		if err := s.Ack(tok); err != nil {
			t.Fatalf("Ack(%d): %v", tok, err)
		}
	}
	// Exactly-once ack: every second settlement fails.
	for _, tok := range tokens {
		if err := s.Ack(tok); !errors.Is(err, service.ErrNoSuchLease) {
			t.Fatalf("double Ack(%d) = %v, want ErrNoSuchLease", tok, err)
		}
		if err := s.Nack(tok); !errors.Is(err, service.ErrNoSuchLease) {
			t.Fatalf("Nack after Ack(%d) = %v, want ErrNoSuchLease", tok, err)
		}
	}
	st := s.Stats()
	if st.Submits != 3 || st.Leases != 3 || st.Acks != 3 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want submits=leases=acks=3, in_flight=0", st)
	}
}

func TestLeaseExpiryRedelivery(t *testing.T) {
	clk := newFakeClock()
	s := mustService(t, service.Config{
		LeaseTTL: time.Minute,
		Backoff:  immediateRetry(10),
		Now:      clk.Now,
	})
	if _, err := s.Submit("acme", json.RawMessage(`"job"`)); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	l1, ok, _ := s.Lease("acme")
	if !ok {
		t.Fatal("first lease came back empty")
	}
	// Before the TTL nothing is reclaimed.
	clk.Advance(30 * time.Second)
	if n := s.ScanOnce(clk.Now()); n != 0 {
		t.Fatalf("ScanOnce before expiry reclaimed %d leases", n)
	}
	// Past the TTL the scanner reclaims and requeues.
	clk.Advance(31 * time.Second)
	if n := s.ScanOnce(clk.Now()); n != 1 {
		t.Fatalf("ScanOnce after expiry reclaimed %d leases, want 1", n)
	}
	l2, ok, _ := s.Lease("acme")
	if !ok {
		t.Fatal("job was not redelivered after expiry")
	}
	if l2.ID != l1.ID || l2.Attempts != 2 {
		t.Fatalf("redelivery = id %d attempts %d, want id %d attempts 2", l2.ID, l2.Attempts, l1.ID)
	}
	// The expired token is dead; the new one settles the job.
	if err := s.Ack(l1.Token); !errors.Is(err, service.ErrNoSuchLease) {
		t.Fatalf("Ack(expired token) = %v, want ErrNoSuchLease", err)
	}
	if err := s.Ack(l2.Token); err != nil {
		t.Fatalf("Ack(fresh token): %v", err)
	}
	st := s.Stats()
	if st.Expired != 1 || st.Redeliveries != 1 {
		t.Fatalf("stats = %+v, want expired=1 redeliveries=1", st)
	}
}

func TestNackDeadLettersAfterBudget(t *testing.T) {
	const budget = 3
	s := mustService(t, service.Config{Backoff: immediateRetry(budget)})
	j, err := s.Submit("acme", json.RawMessage(`"poison"`))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for attempt := 1; ; attempt++ {
		l, ok, err := s.Lease("acme")
		if err != nil {
			t.Fatalf("Lease: %v", err)
		}
		if !ok {
			break // dead-lettered, no longer delivered
		}
		if l.Attempts != attempt {
			t.Fatalf("attempt %d delivered with Attempts=%d", attempt, l.Attempts)
		}
		if attempt > budget {
			t.Fatalf("job delivered %d times, budget is %d", attempt, budget)
		}
		if err := s.Nack(l.Token); err != nil {
			t.Fatalf("Nack attempt %d: %v", attempt, err)
		}
	}
	dead := s.DeadLetters("acme")
	if len(dead) != 1 || dead[0].ID != j.ID || dead[0].Attempts != budget {
		t.Fatalf("dead letters = %+v, want job %d with %d attempts", dead, j.ID, budget)
	}
	st := s.Stats()
	if st.DLQ != 1 || st.Nacks != uint64(budget) || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want dlq=1 nacks=%d in_flight=0", st, budget)
	}
	if len(st.Tenants) != 1 || st.Tenants[0].Dead != 1 || st.Tenants[0].Depth != 0 {
		t.Fatalf("tenant stats = %+v, want dead=1 depth=0", st.Tenants)
	}
}

func TestBackpressure(t *testing.T) {
	s := mustService(t, service.Config{MaxInFlight: 2, Backoff: immediateRetry(5)})
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("acme", nil); err != nil {
			t.Fatalf("Submit %d under quota: %v", i, err)
		}
	}
	_, err := s.Submit("acme", nil)
	var bp *service.BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("Submit over quota = %v, want *BackpressureError", err)
	}
	if bp.Quota != 2 || bp.RetryAfter <= 0 {
		t.Fatalf("backpressure error = %+v", bp)
	}
	// Tenants are isolated: another tenant still has room.
	if _, err := s.Submit("other", nil); err != nil {
		t.Fatalf("Submit to second tenant: %v", err)
	}
	// Settling a job frees quota.
	l, ok, _ := s.Lease("acme")
	if !ok {
		t.Fatal("lease under backpressure came back empty")
	}
	if err := s.Ack(l.Token); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if _, err := s.Submit("acme", nil); err != nil {
		t.Fatalf("Submit after ack freed quota: %v", err)
	}
	if st := s.Stats(); st.Rejects != 1 {
		t.Fatalf("stats rejects = %d, want 1", st.Rejects)
	}
}

func TestCheckpointRestoreRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sbqd.json")
	cfg := service.Config{SnapshotPath: path, Backoff: immediateRetry(10)}

	s1 := mustService(t, cfg)
	payloads := map[uint64]string{}
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf(`{"i":%d}`, i)
		j, err := s1.Submit("acme", json.RawMessage(p))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		payloads[j.ID] = p
	}
	j5, err := s1.Submit("beta", json.RawMessage(`"b"`))
	if err != nil {
		t.Fatalf("Submit beta: %v", err)
	}
	payloads[j5.ID] = `"b"`

	// Leave one lease unsettled so shutdown has to force-expire it.
	if _, ok, _ := s1.Lease("acme"); !ok {
		t.Fatal("lease came back empty")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s1.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with a hung lease = %v, want DeadlineExceeded", err)
	}
	if _, err := s1.Submit("acme", nil); !errors.Is(err, service.ErrStopped) {
		t.Fatalf("Submit after shutdown = %v, want ErrStopped", err)
	}

	// Restart: every unsettled job must come back, ids and payloads intact.
	s2 := mustService(t, cfg)
	got := map[uint64]string{}
	for _, tenant := range []string{"acme", "beta"} {
		for {
			l, ok, err := s2.Lease(tenant)
			if err != nil {
				t.Fatalf("Lease after restore: %v", err)
			}
			if !ok {
				break
			}
			if _, dup := got[l.ID]; dup {
				t.Fatalf("job %d delivered twice after restore", l.ID)
			}
			got[l.ID] = string(l.Payload)
			if err := s2.Ack(l.Token); err != nil {
				t.Fatalf("Ack after restore: %v", err)
			}
		}
	}
	if len(got) != len(payloads) {
		t.Fatalf("restored %d jobs, want %d (got %v)", len(got), len(payloads), got)
	}
	for id, p := range payloads {
		if got[id] != p {
			t.Fatalf("job %d payload = %q, want %q", id, got[id], p)
		}
	}
	// Fresh ids continue past the restored namespace.
	j, err := s2.Submit("acme", nil)
	if err != nil {
		t.Fatalf("Submit after restore: %v", err)
	}
	if j.ID <= j5.ID {
		t.Fatalf("post-restore id %d not beyond pre-restart ids (max %d)", j.ID, j5.ID)
	}
}

// TestForceExpireCheckpointPacing pins the force-expire clock discipline:
// a shutdown that hits its drain deadline force-expires outstanding leases,
// and the redelivery pacing written to the checkpoint must be computed from
// the service clock — not from a fabricated far-future expiry cutoff. A
// positive-backoff job caught by the force-expire must be deliverable
// promptly after restore, not stranded in the delay heap.
func TestForceExpireCheckpointPacing(t *testing.T) {
	clk := newFakeClock()
	path := filepath.Join(t.TempDir(), "sbqd.json")
	cfg := service.Config{
		SnapshotPath: path,
		Now:          clk.Now,
		// The default policy shape: positive, bounded delays. Max 256
		// cycles x 1ms unit = at most ~256ms of pacing.
		Backoff:     policy.AbortBudget{Budget: 10, Inner: policy.ExponentialBackoff{Base: 4, Max: 256}},
		BackoffUnit: time.Millisecond,
	}

	s1 := mustService(t, cfg)
	j, err := s1.Submit("acme", json.RawMessage(`"slow"`))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, ok, _ := s1.Lease("acme"); !ok {
		t.Fatal("lease came back empty")
	}
	// An already-expired context: the drain force-expires immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s1.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}

	// Restore on the same clock, advanced past any legitimate backoff
	// window (1s >> 256ms) — but ~41 days short of the 1000h future the
	// old fake-clock force-expiry would have persisted.
	clk.Advance(time.Second)
	s2 := mustService(t, cfg)
	s2.ScanOnce(clk.Now())
	l, ok, err := s2.Lease("acme")
	if err != nil || !ok {
		t.Fatalf("Lease after restore: ok=%v err=%v (force-expired job stranded in the delay heap?)", ok, err)
	}
	if l.ID != j.ID {
		t.Fatalf("restored job id = %d, want %d", l.ID, j.ID)
	}
	if err := s2.Ack(l.Token); err != nil {
		t.Fatalf("Ack: %v", err)
	}
}

func TestSwapBackendLosesNothing(t *testing.T) {
	s := mustService(t, service.Config{Queue: "Sharded-FAA", Shards: 2})
	const n = 32
	want := map[uint64]bool{}
	for i := 0; i < n; i++ {
		j, err := s.Submit("acme", nil)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		want[j.ID] = true
	}
	if err := s.SwapBackend("acme", "Sharded-SBQ"); err != nil {
		t.Fatalf("SwapBackend: %v", err)
	}
	if got := s.Backend("acme"); got != "Sharded-SBQ" {
		t.Fatalf("Backend = %q after swap, want Sharded-SBQ", got)
	}
	for i := 0; i < n; i++ {
		l, ok, err := s.Lease("acme")
		if err != nil || !ok {
			t.Fatalf("Lease %d after swap: ok=%v err=%v", i, ok, err)
		}
		if !want[l.ID] {
			t.Fatalf("unknown or duplicate job %d after swap", l.ID)
		}
		delete(want, l.ID)
		if err := s.Ack(l.Token); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d jobs lost across the swap: %v", len(want), want)
	}
	if err := s.SwapBackend("acme", "no-such-queue"); err == nil {
		t.Fatal("SwapBackend to an unknown entry succeeded")
	}
	if err := s.SwapBackend("ghost", "Sharded-FAA"); err == nil {
		t.Fatal("SwapBackend on an unknown tenant succeeded")
	}
}

// TestSwapBackendConcurrent races swaps against each other and against
// submits: serialized swaps must never strand a drained id in an abandoned
// backend, so every accepted job stays leaseable.
func TestSwapBackendConcurrent(t *testing.T) {
	s := mustService(t, service.Config{Queue: "Sharded-FAA", Shards: 2})
	want := make(map[uint64]bool)
	var wmu sync.Mutex

	// Create the tenant before the racing swappers look it up.
	j0, err := s.Submit("acme", nil)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	want[j0.ID] = true

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				j, err := s.Submit("acme", nil)
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				wmu.Lock()
				want[j.ID] = true
				wmu.Unlock()
			}
		}()
	}
	entries := []string{"Sharded-SBQ", "Sharded-FAA"}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if err := s.SwapBackend("acme", entries[(g+i)%len(entries)]); err != nil {
					t.Errorf("SwapBackend: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for {
		l, ok, err := s.Lease("acme")
		if err != nil {
			t.Fatalf("Lease: %v", err)
		}
		if !ok {
			break
		}
		wmu.Lock()
		if !want[l.ID] {
			wmu.Unlock()
			t.Fatalf("unknown or duplicate job %d", l.ID)
		}
		delete(want, l.ID)
		wmu.Unlock()
		if err := s.Ack(l.Token); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d jobs unreachable after concurrent swaps: %v", len(want), want)
	}
}

func TestSwapBackendAfterShutdownFenced(t *testing.T) {
	s := mustService(t, service.Config{})
	if _, err := s.Submit("acme", nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.SwapBackend("acme", "Sharded-SBQ"); !errors.Is(err, service.ErrStopped) {
		t.Fatalf("SwapBackend after shutdown = %v, want ErrStopped", err)
	}
}

func TestTenantLimit(t *testing.T) {
	s := mustService(t, service.Config{MaxTenants: 2})
	for _, tn := range []string{"a", "b"} {
		if _, err := s.Submit(tn, nil); err != nil {
			t.Fatalf("Submit %q under the cap: %v", tn, err)
		}
	}
	if _, err := s.Submit("c", nil); !errors.Is(err, service.ErrTenantLimit) {
		t.Fatalf("Submit past the tenant cap = %v, want ErrTenantLimit", err)
	}
	// Existing tenants still accept work.
	if _, err := s.Submit("a", nil); err != nil {
		t.Fatalf("Submit to existing tenant at the cap: %v", err)
	}
	// A negative cap means unlimited.
	u := mustService(t, service.Config{MaxTenants: -1})
	for i := 0; i < 8; i++ {
		if _, err := u.Submit(fmt.Sprintf("t%d", i), nil); err != nil {
			t.Fatalf("Submit with unlimited tenants: %v", err)
		}
	}
}

// TestShutdownReportsDrainAndCheckpointErrors: when the drain times out AND
// the checkpoint fails, both errors surface through the returned error.
func TestShutdownReportsDrainAndCheckpointErrors(t *testing.T) {
	dir := t.TempDir()
	// Squat a directory on the checkpoint's temp-file path: New's restore
	// still sees a cleanly missing snapshot, but the checkpoint's
	// WriteFile of snap.json.tmp must fail.
	path := filepath.Join(dir, "snap.json")
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	s := mustService(t, service.Config{SnapshotPath: path})
	if _, err := s.Submit("acme", nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, ok, _ := s.Lease("acme"); !ok {
		t.Fatal("lease came back empty")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // drain deadline already passed: force-expiry guaranteed
	err := s.Shutdown(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown = %v, want the drain's context.Canceled to survive the checkpoint failure", err)
	}
	if !strings.Contains(fmt.Sprint(err), "checkpoint") {
		t.Fatalf("Shutdown = %v, want the checkpoint failure reported too", err)
	}
}

func TestGracefulShutdownDrainsCleanly(t *testing.T) {
	s := mustService(t, service.Config{})
	if _, err := s.Submit("acme", nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	l, ok, _ := s.Lease("acme")
	if !ok {
		t.Fatal("lease came back empty")
	}
	done := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		done <- s.Ack(l.Token)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with a settling worker = %v, want clean drain", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Ack during drain: %v", err)
	}
	if err := s.Shutdown(ctx); !errors.Is(err, service.ErrAlreadyDraining) {
		t.Fatalf("second Shutdown = %v, want ErrAlreadyDraining", err)
	}
	if _, _, err := s.Lease("acme"); !errors.Is(err, service.ErrStopped) {
		t.Fatalf("Lease after shutdown = %v, want ErrStopped", err)
	}
}

func TestNewRejectsUnknownQueue(t *testing.T) {
	if _, err := service.New(service.Config{Queue: "no-such-queue"}); err == nil {
		t.Fatal("New with an unknown queue entry succeeded")
	}
}
