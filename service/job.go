package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Job is the externally visible description of a submitted job.
type Job struct {
	ID      uint64          `json:"id"`
	Tenant  string          `json:"tenant"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Attempts counts deliveries, including the one in flight when the
	// job is leased: a freshly submitted job has 0, the first lease makes
	// it 1, and a job dead-letters once the retry policy refuses attempt
	// Attempts+1.
	Attempts    int       `json:"attempts"`
	SubmittedAt time.Time `json:"submitted_at"`
}

// Lease is one delivery of a job to a worker: the job plus the monotonic
// token the worker must present to Ack or Nack it, and the deadline after
// which the scanner reclaims the lease and redelivers the job.
type Lease struct {
	Job
	Token    uint64    `json:"token"`
	Deadline time.Time `json:"deadline"`
}

// Service errors. BackpressureError is a type (it carries the retry hint);
// the rest are sentinels callers match with errors.Is.
var (
	// ErrDraining is returned by Submit and Lease once graceful shutdown
	// has fenced new work.
	ErrDraining = errors.New("service: draining, not accepting new work")
	// ErrStopped is returned once shutdown has completed.
	ErrStopped = errors.New("service: stopped")
	// ErrNoSuchLease is returned by Ack and Nack for a token that is
	// unknown, already settled, or reclaimed by the deadline scanner —
	// the exactly-once-ack guarantee is exactly this error firing on
	// every settlement attempt after the first.
	ErrNoSuchLease = errors.New("service: unknown, expired, or already-settled lease token")
	// ErrTenantLimit is returned by Submit when creating the job's tenant
	// would exceed Config.MaxTenants. HTTP maps it to 429.
	ErrTenantLimit = errors.New("service: tenant limit reached")
)

// BackpressureError is returned by Submit when a tenant's in-flight depth
// (queued + delayed + leased jobs) has reached its quota. HTTP maps it to
// 429 with a Retry-After header.
type BackpressureError struct {
	Tenant     string
	Depth      int64
	Quota      int64
	RetryAfter time.Duration
}

// Error implements error.
func (e *BackpressureError) Error() string {
	return fmt.Sprintf("service: tenant %q over quota (%d in flight, quota %d); retry after %s",
		e.Tenant, e.Depth, e.Quota, e.RetryAfter)
}

// jobState is the lifecycle of one job. A job id is in its tenant's queue
// iff the state is jsQueued; in the delay heap iff jsDelayed; in the lease
// table iff jsLeased. jsDone jobs are removed from the tenant entirely,
// jsDead jobs move to the tenant's dead-letter list.
type jobState uint8

const (
	jsQueued jobState = iota
	jsLeased
	jsDelayed
	jsDone
	jsDead
)

// job is the internal record. mu guards the mutable lifecycle fields;
// identity fields (id, tenant, payload, submitted) are immutable after
// construction. Lock ordering: job.mu is a leaf — never acquire any other
// service lock while holding it.
type job struct {
	id        uint64
	tenant    *tenant
	payload   json.RawMessage
	submitted time.Time

	mu        sync.Mutex
	state     jobState
	attempts  int
	token     uint64    // current lease token when jsLeased
	deadline  time.Time // lease deadline when jsLeased
	notBefore time.Time // redelivery pacing when jsDelayed
	delivered bool      // first delivery observed (lease-latency series)
}

// external renders the job in its public shape. Callers must hold j.mu or
// otherwise have the job quiescent.
func (j *job) external() Job {
	return Job{
		ID:          j.id,
		Tenant:      j.tenant.name,
		Payload:     j.payload,
		Attempts:    j.attempts,
		SubmittedAt: j.submitted,
	}
}
