package service

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/queue"
	"repro/queue/registry"
)

// tenant is one isolated job namespace: its own registry-built queue, job
// table, dead-letter list, and depth quota accounting.
type tenant struct {
	name string
	svc  *Service

	// stats aggregates this tenant's telemetry: the service lifecycle
	// counters (SrvSubmits..SrvRejects, lease/ack latency series) plus its
	// queue's own counters (CAS attempts/failures, steals, ...), which the
	// backend tees in below. rec fans every record out to stats and the
	// service-wide recorder, so per-tenant and global scopes stay additive:
	// merging every tenant's snapshot reproduces the global one.
	stats *obs.Stats
	rec   obs.Recorder

	// qmu guards shardStats: one Stats per queue shard, created lazily by
	// the backend builder. Shard stats deliberately persist across
	// SwapBackend — shard i of the new backend accumulates into the same
	// Stats as shard i of the old one — so the exported per-shard counters
	// stay monotonic for the /metrics scraper even while the chaos harness
	// swaps backends mid-run.
	qmu        sync.Mutex
	shardStats []*obs.Stats

	// be is the current backend; SwapBackend replaces it atomically and
	// migrates stranded elements (see swap).
	be atomic.Pointer[backend]
	// swapMu serializes SwapBackend calls on this tenant: a swap's drain
	// must finish publishing into its destination before another swap may
	// replace that destination, or the drained ids would land in an
	// abandoned backend and become unreachable by Lease.
	swapMu sync.Mutex
	// next picks the producer lane round-robin.
	next atomic.Uint32

	depth atomic.Int64 // queued + delayed + leased (quota accounting)

	jmu  sync.Mutex
	jobs map[uint64]*job // live (non-dead, non-done) jobs by id
	dead []*job          // dead-letter queue, oldest first
}

// backend is one built queue instance as the tenant drives it: producer
// lanes for Submit (each a single-goroutine registry view behind a mutex)
// and a shared consumer view for Lease.
type backend struct {
	queueName string
	lanes     []*lane
	cons      queue.BatchQueue[uint64]
}

// lane serializes one registry producer view. HTTP handlers run on
// arbitrary goroutines; the registry documents producer views as
// single-goroutine, so each lane owns its view behind a mutex and Submit
// spreads across lanes round-robin.
type lane struct {
	mu sync.Mutex
	q  queue.BatchQueue[uint64]
}

// newBackend builds queueName for this tenant's shape. The queue records
// into the tenant's tee (tenant stats + service recorder); each shard
// additionally records into the tenant's persistent per-shard Stats, so
// /metrics can label CAS-failure and retry counters by shard.
func (t *tenant) newBackend(queueName string) (*backend, error) {
	s := t.svc
	inst, err := registry.Build(queueName, registry.Config{
		Producers: s.cfg.Lanes,
		Shards:    s.cfg.Shards,
		Recorder:  t.rec,
		ShardRecorder: func(shard int) obs.Recorder {
			return obs.Tee(t.shardStatsFor(shard), t.rec)
		},
	})
	if err != nil {
		return nil, err
	}
	be := &backend{queueName: queueName, cons: inst.ConsumerView(0)}
	be.lanes = make([]*lane, s.cfg.Lanes)
	for i := range be.lanes {
		be.lanes[i] = &lane{q: inst.ProducerView(i)}
	}
	return be, nil
}

// shardStatsFor returns (creating if needed) the tenant's Stats for one
// queue shard. Only backend construction calls it; the returned recorder
// is what sits on the queue hot path.
func (t *tenant) shardStatsFor(shard int) *obs.Stats {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	for len(t.shardStats) <= shard {
		t.shardStats = append(t.shardStats, obs.New())
	}
	return t.shardStats[shard]
}

// shardStatsList snapshots the per-shard Stats slice for the exporter.
func (t *tenant) shardStatsList() []*obs.Stats {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	return append([]*obs.Stats(nil), t.shardStats...)
}

// newTenant builds a tenant on the named registry entry. Caller holds
// s.tmu.
func (s *Service) newTenant(name, queueName string) (*tenant, error) {
	t := &tenant{name: name, svc: s, jobs: map[uint64]*job{}, stats: obs.New()}
	t.rec = obs.Tee(t.stats, s.rec)
	be, err := t.newBackend(queueName)
	if err != nil {
		return nil, err
	}
	t.be.Store(be)
	return t, nil
}

// enqueue pushes a job id through one producer lane. The pointer re-check
// under the lane lock pairs with swap's lane barrier: an enqueue commits
// to a backend only while that backend is still current, so the
// post-barrier drain cannot miss it.
func (t *tenant) enqueue(id uint64) {
	for {
		be := t.be.Load()
		ln := be.lanes[int(t.next.Add(1))%len(be.lanes)]
		ln.mu.Lock()
		if t.be.Load() != be {
			ln.mu.Unlock()
			continue // swapped mid-pick; retry on the new backend
		}
		ln.q.Enqueue(id)
		ln.mu.Unlock()
		return
	}
}

// dequeue pops one job id, or ok=false when the queue appears empty.
func (t *tenant) dequeue() (uint64, bool) {
	return t.be.Load().cons.Dequeue()
}

// drainInto moves every element of old into the tenant's *current*
// backend. It returns once two consecutive sweeps of old's consumer view
// come back empty — by then every pre-swap enqueue has been barriered out
// (see SwapBackend) and the old queue holds nothing. Re-enqueueing goes
// through t.enqueue, whose pointer re-check under the lane lock guarantees
// each id commits to a backend that is still current — never to one a
// concurrent swap already replaced.
func (t *tenant) drainInto(old *backend) {
	empty := 0
	for empty < 2 {
		id, ok := old.cons.Dequeue()
		if !ok {
			empty++
			continue
		}
		empty = 0
		t.enqueue(id)
	}
}

// SwapBackend rebuilds tenantName's queue on a different registry entry
// mid-flight and migrates every queued element — the service-level
// analogue of the paper's HTM-to-fallback mode switch, exercised by the
// chaos harness (swap a tenant from Sharded-SBQ to Sharded-FAA under
// load and require zero lost jobs).
//
// Protocol: publish the new backend (new Submits land there), then take
// each old lane's mutex once as a barrier (any Submit that loaded the old
// pointer has finished its enqueue), then drain the old consumer view
// into the current backend until two consecutive empty sweeps. Elements
// dequeued concurrently by Lease are deliveries, not losses.
//
// Swaps on one tenant are serialized by t.swapMu, and the whole call is
// fenced by the shutdown opWG like Submit/Lease: once Shutdown has flipped
// the state, SwapBackend returns ErrDraining/ErrStopped instead of racing
// the drain and checkpoint.
func (s *Service) SwapBackend(tenantName, queueName string) error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.opWG.Done()
	if _, ok := registry.LookupEntry(queueName); !ok {
		return fmt.Errorf("service: unknown queue %q (have %v)", queueName, registry.Names())
	}
	t, err := s.tenantFor(tenantName, false)
	if err != nil {
		return err
	}
	if t == nil {
		return fmt.Errorf("service: unknown tenant %q", tenantName)
	}
	nb, err := t.newBackend(queueName)
	if err != nil {
		return err
	}
	t.swapMu.Lock()
	defer t.swapMu.Unlock()
	old := t.be.Swap(nb)
	for _, ln := range old.lanes {
		// Empty critical section on purpose: a barrier flushing every
		// enqueue that committed to the old backend (see tenant.enqueue).
		ln.mu.Lock()
		ln.mu.Unlock() //nolint:staticcheck
	}
	t.drainInto(old)
	s.log.lifecycle("backend swap", "tenant", tenantName, "from", old.queueName, "to", queueName)
	return nil
}

// Backend reports tenantName's current queue entry name, for tests and
// stats.
func (s *Service) Backend(tenantName string) string {
	t, _ := s.tenantFor(tenantName, false)
	if t == nil {
		return ""
	}
	return t.be.Load().queueName
}
