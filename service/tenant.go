package service

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/queue"
	"repro/queue/registry"
)

// tenant is one isolated job namespace: its own registry-built queue, job
// table, dead-letter list, and depth quota accounting.
type tenant struct {
	name string
	svc  *Service

	// be is the current backend; SwapBackend replaces it atomically and
	// migrates stranded elements (see swap).
	be atomic.Pointer[backend]
	// swapMu serializes SwapBackend calls on this tenant: a swap's drain
	// must finish publishing into its destination before another swap may
	// replace that destination, or the drained ids would land in an
	// abandoned backend and become unreachable by Lease.
	swapMu sync.Mutex
	// next picks the producer lane round-robin.
	next atomic.Uint32

	depth atomic.Int64 // queued + delayed + leased (quota accounting)

	jmu  sync.Mutex
	jobs map[uint64]*job // live (non-dead, non-done) jobs by id
	dead []*job          // dead-letter queue, oldest first
}

// backend is one built queue instance as the tenant drives it: producer
// lanes for Submit (each a single-goroutine registry view behind a mutex)
// and a shared consumer view for Lease.
type backend struct {
	queueName string
	lanes     []*lane
	cons      queue.BatchQueue[uint64]
}

// lane serializes one registry producer view. HTTP handlers run on
// arbitrary goroutines; the registry documents producer views as
// single-goroutine, so each lane owns its view behind a mutex and Submit
// spreads across lanes round-robin.
type lane struct {
	mu sync.Mutex
	q  queue.BatchQueue[uint64]
}

// newBackend builds queueName for this service's shape.
func (s *Service) newBackend(queueName string) (*backend, error) {
	inst, err := registry.Build(queueName, registry.Config{
		Producers: s.cfg.Lanes,
		Shards:    s.cfg.Shards,
		Recorder:  s.rec,
	})
	if err != nil {
		return nil, err
	}
	be := &backend{queueName: queueName, cons: inst.ConsumerView(0)}
	be.lanes = make([]*lane, s.cfg.Lanes)
	for i := range be.lanes {
		be.lanes[i] = &lane{q: inst.ProducerView(i)}
	}
	return be, nil
}

// newTenant builds a tenant on the named registry entry. Caller holds
// s.tmu.
func (s *Service) newTenant(name, queueName string) (*tenant, error) {
	be, err := s.newBackend(queueName)
	if err != nil {
		return nil, err
	}
	t := &tenant{name: name, svc: s, jobs: map[uint64]*job{}}
	t.be.Store(be)
	return t, nil
}

// enqueue pushes a job id through one producer lane. The pointer re-check
// under the lane lock pairs with swap's lane barrier: an enqueue commits
// to a backend only while that backend is still current, so the
// post-barrier drain cannot miss it.
func (t *tenant) enqueue(id uint64) {
	for {
		be := t.be.Load()
		ln := be.lanes[int(t.next.Add(1))%len(be.lanes)]
		ln.mu.Lock()
		if t.be.Load() != be {
			ln.mu.Unlock()
			continue // swapped mid-pick; retry on the new backend
		}
		ln.q.Enqueue(id)
		ln.mu.Unlock()
		return
	}
}

// dequeue pops one job id, or ok=false when the queue appears empty.
func (t *tenant) dequeue() (uint64, bool) {
	return t.be.Load().cons.Dequeue()
}

// drainInto moves every element of old into the tenant's *current*
// backend. It returns once two consecutive sweeps of old's consumer view
// come back empty — by then every pre-swap enqueue has been barriered out
// (see SwapBackend) and the old queue holds nothing. Re-enqueueing goes
// through t.enqueue, whose pointer re-check under the lane lock guarantees
// each id commits to a backend that is still current — never to one a
// concurrent swap already replaced.
func (t *tenant) drainInto(old *backend) {
	empty := 0
	for empty < 2 {
		id, ok := old.cons.Dequeue()
		if !ok {
			empty++
			continue
		}
		empty = 0
		t.enqueue(id)
	}
}

// SwapBackend rebuilds tenantName's queue on a different registry entry
// mid-flight and migrates every queued element — the service-level
// analogue of the paper's HTM-to-fallback mode switch, exercised by the
// chaos harness (swap a tenant from Sharded-SBQ to Sharded-FAA under
// load and require zero lost jobs).
//
// Protocol: publish the new backend (new Submits land there), then take
// each old lane's mutex once as a barrier (any Submit that loaded the old
// pointer has finished its enqueue), then drain the old consumer view
// into the current backend until two consecutive empty sweeps. Elements
// dequeued concurrently by Lease are deliveries, not losses.
//
// Swaps on one tenant are serialized by t.swapMu, and the whole call is
// fenced by the shutdown opWG like Submit/Lease: once Shutdown has flipped
// the state, SwapBackend returns ErrDraining/ErrStopped instead of racing
// the drain and checkpoint.
func (s *Service) SwapBackend(tenantName, queueName string) error {
	if err := s.begin(); err != nil {
		return err
	}
	defer s.opWG.Done()
	if _, ok := registry.LookupEntry(queueName); !ok {
		return fmt.Errorf("service: unknown queue %q (have %v)", queueName, registry.Names())
	}
	t, err := s.tenantFor(tenantName, false)
	if err != nil {
		return err
	}
	if t == nil {
		return fmt.Errorf("service: unknown tenant %q", tenantName)
	}
	nb, err := s.newBackend(queueName)
	if err != nil {
		return err
	}
	t.swapMu.Lock()
	defer t.swapMu.Unlock()
	old := t.be.Swap(nb)
	for _, ln := range old.lanes {
		// Empty critical section on purpose: a barrier flushing every
		// enqueue that committed to the old backend (see tenant.enqueue).
		ln.mu.Lock()
		ln.mu.Unlock() //nolint:staticcheck
	}
	t.drainInto(old)
	return nil
}

// Backend reports tenantName's current queue entry name, for tests and
// stats.
func (s *Service) Backend(tenantName string) string {
	t, _ := s.tenantFor(tenantName, false)
	if t == nil {
		return ""
	}
	return t.be.Load().queueName
}
