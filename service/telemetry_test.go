package service_test

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/export"
	"repro/service"
)

func scrapeMetrics(t *testing.T, h http.Handler) *export.Scrape {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != export.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, export.ContentType)
	}
	sc, err := export.Parse(rr.Body)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sc
}

func mustValue(t *testing.T, sc *export.Scrape, name string, labels export.Labels) float64 {
	t.Helper()
	v, ok := sc.Value(name, labels)
	if !ok {
		t.Fatalf("metric %s%v missing", name, labels)
	}
	return v
}

func TestMetricsExposition(t *testing.T) {
	s := mustService(t, service.Config{Shards: 2, Lanes: 2})
	defer s.Shutdown(context.Background())

	for i := 0; i < 5; i++ {
		if _, err := s.Submit("a", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit("b", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		l, ok, err := s.Lease("a")
		if err != nil || !ok {
			t.Fatalf("Lease a: ok=%v err=%v", ok, err)
		}
		if err := s.Ack(l.Token); err != nil {
			t.Fatal(err)
		}
	}
	l, ok, err := s.Lease("b")
	if err != nil || !ok {
		t.Fatalf("Lease b: ok=%v err=%v", ok, err)
	}
	if err := s.Nack(l.Token); err != nil {
		t.Fatal(err)
	}

	h := s.Handler()
	sc := scrapeMetrics(t, h)

	// Per-tenant lifecycle counters.
	if v := mustValue(t, sc, "sbq_srv_submits_total", export.Labels{"tenant": "a"}); v != 5 {
		t.Fatalf("submits{tenant=a} = %g, want 5", v)
	}
	if v := mustValue(t, sc, "sbq_srv_submits_total", export.Labels{"tenant": "b"}); v != 3 {
		t.Fatalf("submits{tenant=b} = %g, want 3", v)
	}
	if v := mustValue(t, sc, "sbq_srv_acks_total", export.Labels{"tenant": "a"}); v != 2 {
		t.Fatalf("acks{tenant=a} = %g, want 2", v)
	}
	if v := mustValue(t, sc, "sbq_srv_nacks_total", export.Labels{"tenant": "b"}); v != 1 {
		t.Fatalf("nacks{tenant=b} = %g, want 1", v)
	}

	// Ack latency histogram per tenant.
	if _, ok := sc.Quantile("sbq_ack_ns", export.Labels{"tenant": "a"}, 0.5); !ok {
		t.Fatal("no ack latency histogram for tenant a")
	}

	// Per-shard queue counters: shard-labeled enq ops must exist and sum to
	// the tenant-scope value (the tenant tee aggregates its shards).
	var shardSum float64
	shardPoints := 0
	for _, p := range sc.Points {
		if p.Name == "sbq_enq_ops_total" && p.Labels["tenant"] == "a" && p.Labels["shard"] != "" {
			shardSum += p.Value
			shardPoints++
		}
	}
	if shardPoints == 0 {
		t.Fatal("no shard-labeled enq_ops points for tenant a")
	}
	tenantEnq := mustValue(t, sc, "sbq_enq_ops_total", export.Labels{"tenant": "a"})
	if shardSum != tenantEnq {
		t.Fatalf("shard enq_ops sum = %g, tenant scope = %g", shardSum, tenantEnq)
	}

	// Gauges: readiness and the per-tenant depth breakdown, labeled with
	// the tenant's current backend.
	if v := mustValue(t, sc, service.MetricReady, nil); v != 1 {
		t.Fatalf("ready = %g, want 1", v)
	}
	depthLabels := export.Labels{"tenant": "a", "queue": service.DefaultQueue}
	if v := mustValue(t, sc, service.MetricTenantDepth, depthLabels); v != 3 {
		t.Fatalf("depth{a} = %g, want 3 (5 submitted - 2 acked)", v)
	}

	// A second scrape after more work must be monotonic w.r.t. the first.
	if _, err := s.Submit("a", nil); err != nil {
		t.Fatal(err)
	}
	sc2 := scrapeMetrics(t, h)
	if v := export.CheckMonotonic(sc, sc2); len(v) != 0 {
		t.Fatalf("scrape-to-scrape monotonicity violations: %v", v)
	}
	if v := mustValue(t, sc2, "sbq_srv_submits_total", export.Labels{"tenant": "a"}); v != 6 {
		t.Fatalf("submits{tenant=a} after second scrape = %g, want 6", v)
	}
}

func TestMetricsTenantScopesSumToGlobal(t *testing.T) {
	s := mustService(t, service.Config{})
	defer s.Shutdown(context.Background())
	for _, tenant := range []string{"a", "b", "c"} {
		for i := 0; i < 4; i++ {
			if _, err := s.Submit(tenant, nil); err != nil {
				t.Fatal(err)
			}
		}
		l, ok, err := s.Lease(tenant)
		if err != nil || !ok {
			t.Fatalf("Lease %s: ok=%v err=%v", tenant, ok, err)
		}
		if err := s.Ack(l.Token); err != nil {
			t.Fatal(err)
		}
	}
	sc := scrapeMetrics(t, s.Handler())
	global := s.Stats()
	if got := sc.Sum("sbq_srv_submits_total"); got != float64(global.Submits) {
		t.Fatalf("sum of tenant submits = %g, global = %d", got, global.Submits)
	}
	if got := sc.Sum("sbq_srv_acks_total"); got != float64(global.Acks) {
		t.Fatalf("sum of tenant acks = %g, global = %d", got, global.Acks)
	}
}

func TestReadyzTransitions(t *testing.T) {
	s := mustService(t, service.Config{})
	h := s.Handler()

	get := func(path string) int {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr.Code
	}
	if c := get("/readyz"); c != http.StatusOK {
		t.Fatalf("GET /readyz while serving = %d", c)
	}
	if !s.Ready() {
		t.Fatal("Ready() false while serving")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if c := get("/readyz"); c != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz after shutdown = %d", c)
	}
	if c := get("/healthz"); c != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz after shutdown = %d", c)
	}
	if s.Ready() {
		t.Fatal("Ready() true after shutdown")
	}
}

func TestLogSampling(t *testing.T) {
	var buf bytes.Buffer
	s := mustService(t, service.Config{
		Logger:      slog.New(slog.NewTextHandler(&buf, nil)),
		LogEvery:    3,
		MaxInFlight: 10,
	})
	defer s.Shutdown(context.Background())

	for i := 0; i < 7; i++ {
		if _, err := s.Submit("a", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow the quota: rejects are never sampled.
	for i := 0; i < 3; i++ {
		if _, err := s.Submit("a", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit("a", nil); err == nil {
			t.Fatal("Submit over quota succeeded")
		}
	}

	count := func(msg string) int {
		n := 0
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.Contains(line, "msg="+msg) {
				n++
			}
		}
		return n
	}
	// 10 accepted submits at 1-in-3 → occurrences 1, 4, 7, 10.
	if got := count("submit"); got != 4 {
		t.Fatalf("sampled submit records = %d, want 4\n%s", got, buf.String())
	}
	if got := count(`"backpressure reject"`); got != 2 {
		t.Fatalf("reject records = %d, want 2\n%s", got, buf.String())
	}
}
