package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// snapshotVersion guards the checkpoint format. Bump on incompatible
// changes; restore rejects unknown versions loudly instead of silently
// dropping jobs.
const snapshotVersion = 1

// snapshot is the on-disk checkpoint: every unsettled job, per tenant, in
// redelivery order.
type snapshot struct {
	Version int       `json:"version"`
	Taken   time.Time `json:"taken"`
	NextID  uint64    `json:"next_id"`
	// NextToken persists so lease tokens stay monotonic across restarts:
	// a worker holding a pre-restart token must get ErrNoSuchLease from
	// the restarted service, never a collision with a fresh token (which
	// would ack someone else's job).
	NextToken uint64       `json:"next_token"`
	Tenants   []snapTenant `json:"tenants"`
}

type snapTenant struct {
	Name string    `json:"name"`
	Jobs []snapJob `json:"jobs"` // pending jobs, queue order first
	Dead []snapJob `json:"dead,omitempty"`
}

type snapJob struct {
	ID          uint64          `json:"id"`
	Payload     json.RawMessage `json:"payload,omitempty"`
	Attempts    int             `json:"attempts"`
	SubmittedAt time.Time       `json:"submitted_at"`
	// NotBefore, when set and still in the future at restore time, puts
	// the job back in the delay heap instead of the queue.
	NotBefore time.Time `json:"not_before,omitempty"`
}

// checkpoint writes every unsettled job to path (tmp + rename, so a crash
// mid-write leaves the previous checkpoint intact). Caller guarantees
// quiescence: state is srvStopped, opWG drained, scanner stopped,
// inFlight zero.
func (s *Service) checkpoint(path string) error {
	snap := snapshot{
		Version:   snapshotVersion,
		Taken:     s.now(),
		NextID:    s.nextID.Load(),
		NextToken: s.nextToken.Load(),
	}

	for _, t := range s.tenantList() {
		st := snapTenant{Name: t.name}

		// Queue order first: drain the backend (quiescent, so two empty
		// sweeps mean empty) and emit jobs in dequeue order.
		be := t.be.Load()
		inQueue := map[uint64]bool{}
		empty := 0
		for empty < 2 {
			id, ok := be.cons.Dequeue()
			if !ok {
				empty++
				continue
			}
			empty = 0
			t.jmu.Lock()
			j := t.jobs[id]
			t.jmu.Unlock()
			if j == nil || inQueue[id] {
				continue
			}
			inQueue[id] = true
			st.Jobs = append(st.Jobs, snapJobOf(j))
		}

		// Then everything else in the job table — delayed jobs, plus any
		// job a crashy interleaving left unreachable from the queue —
		// sorted by id for determinism.
		t.jmu.Lock()
		var rest []*job
		for id, j := range t.jobs {
			if !inQueue[id] {
				rest = append(rest, j)
			}
		}
		dead := make([]*job, len(t.dead))
		copy(dead, t.dead)
		t.jmu.Unlock()
		sort.Slice(rest, func(i, k int) bool { return rest[i].id < rest[k].id })
		for _, j := range rest {
			st.Jobs = append(st.Jobs, snapJobOf(j))
		}
		for _, j := range dead {
			st.Dead = append(st.Dead, snapJobOf(j))
		}
		if len(st.Jobs) > 0 || len(st.Dead) > 0 {
			snap.Tenants = append(snap.Tenants, st)
		}
	}

	// Compact on purpose: MarshalIndent would reformat RawMessage
	// payloads, breaking byte-for-byte payload round-trips.
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("service: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("service: checkpoint dir: %w", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("service: committing checkpoint: %w", err)
	}
	return nil
}

func snapJobOf(j *job) snapJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	sj := snapJob{
		ID:          j.id,
		Payload:     j.payload,
		Attempts:    j.attempts,
		SubmittedAt: j.submitted,
	}
	if j.state == jsDelayed {
		sj.NotBefore = j.notBefore
	}
	return sj
}

// restore loads a checkpoint written by a previous process's Shutdown.
// A missing file is not an error (fresh start); a malformed or
// wrong-version file is, loudly — silently dropping persisted jobs would
// defeat the point. Called from New before the scanner starts.
func (s *Service) restore(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("service: reading checkpoint: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("service: decoding checkpoint %s: %w", path, err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("service: checkpoint %s has version %d, want %d", path, snap.Version, snapshotVersion)
	}
	s.nextID.Store(snap.NextID)
	s.nextToken.Store(snap.NextToken)
	now := s.now()
	restored := 0
	for _, st := range snap.Tenants {
		t, err := s.newTenant(st.Name, s.cfg.Queue)
		if err != nil {
			return err
		}
		s.tenants[st.Name] = t
		restored += len(st.Jobs)
		for _, sj := range st.Jobs {
			j := &job{
				id:        sj.ID,
				tenant:    t,
				payload:   sj.Payload,
				submitted: sj.SubmittedAt,
				attempts:  sj.Attempts,
				delivered: sj.Attempts > 0,
			}
			t.jobs[j.id] = j
			t.depth.Add(1)
			if sj.NotBefore.After(now) {
				j.state = jsDelayed
				j.notBefore = sj.NotBefore
				s.delayed.push(jobAt{at: sj.NotBefore, j: j}) // pre-scanner: no lock needed, but cheap
			} else {
				j.state = jsQueued
				t.enqueue(j.id)
			}
		}
		for _, sj := range st.Dead {
			t.dead = append(t.dead, &job{
				id:        sj.ID,
				tenant:    t,
				payload:   sj.Payload,
				submitted: sj.SubmittedAt,
				attempts:  sj.Attempts,
				state:     jsDead,
				delivered: sj.Attempts > 0,
			})
		}
	}
	s.log.lifecycle("checkpoint restored", "path", path, "tenants", len(snap.Tenants), "jobs", restored)
	return nil
}
