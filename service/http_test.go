package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/service"
)

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestHTTPEndpoints(t *testing.T) {
	s := mustService(t, service.Config{MaxInFlight: 2, Backoff: immediateRetry(5)})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Submit.
	resp := postJSON(t, srv.URL+"/v1/submit", `{"tenant":"acme","payload":{"k":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d, want 200", resp.StatusCode)
	}
	job := decode[service.Job](t, resp)
	if job.ID == 0 || job.Tenant != "acme" {
		t.Fatalf("submit returned %+v", job)
	}

	// Lease delivers it.
	resp = postJSON(t, srv.URL+"/v1/lease", `{"tenant":"acme"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease status = %d, want 200", resp.StatusCode)
	}
	lease := decode[service.Lease](t, resp)
	if lease.ID != job.ID || lease.Token == 0 {
		t.Fatalf("lease returned %+v, want job %d", lease, job.ID)
	}

	// Empty queue leases 204.
	resp = postJSON(t, srv.URL+"/v1/lease", `{"tenant":"acme"}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("empty lease status = %d, want 204", resp.StatusCode)
	}

	// Ack once 200, twice 409.
	ack := fmt.Sprintf(`{"token":%d}`, lease.Token)
	if resp = postJSON(t, srv.URL+"/v1/ack", ack); resp.StatusCode != http.StatusOK {
		t.Fatalf("ack status = %d, want 200", resp.StatusCode)
	}
	if resp = postJSON(t, srv.URL+"/v1/ack", ack); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double-ack status = %d, want 409", resp.StatusCode)
	}

	// Backpressure: fill the quota, then expect 429 + Retry-After.
	for i := 0; i < 2; i++ {
		if resp = postJSON(t, srv.URL+"/v1/submit", `{"tenant":"acme"}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d status = %d, want 200", i, resp.StatusCode)
		}
	}
	resp = postJSON(t, srv.URL+"/v1/submit", `{"tenant":"acme"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After header")
	}

	// Malformed bodies and missing fields are 400s.
	for _, bad := range []struct{ path, body string }{
		{"/v1/submit", `{not json`},
		{"/v1/submit", `{"payload":1}`},
		{"/v1/lease", `{}`},
		{"/v1/ack", `{}`},
	} {
		if resp = postJSON(t, srv.URL+bad.path, bad.body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s %q status = %d, want 400", bad.path, bad.body, resp.StatusCode)
		}
	}

	// Stats reflect the traffic.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status=%v err=%v", resp.StatusCode, err)
	}
	st := decode[service.StatsSnapshot](t, resp)
	resp.Body.Close()
	if st.Submits != 3 || st.Acks != 1 || st.Rejects != 1 || st.State != "serving" {
		t.Fatalf("stats = %+v, want submits=3 acks=1 rejects=1 serving", st)
	}

	// DLQ endpoint: empty list for a live tenant, 400 without the param.
	resp, _ = http.Get(srv.URL + "/v1/dlq?tenant=acme")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dlq status = %d, want 200", resp.StatusCode)
	}
	if dead := decode[[]service.Job](t, resp); len(dead) != 0 {
		t.Fatalf("dlq = %+v, want empty", dead)
	}
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/v1/dlq")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dlq without tenant status = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Health flips with shutdown; fenced endpoints go 503.
	resp, _ = http.Get(srv.URL + "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, _ = http.Get(srv.URL + "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, srv.URL+"/v1/submit", `{"tenant":"acme"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown = %d, want 503", resp.StatusCode)
	}
}
