package service

import "time"

// The two scanner heaps are hand-rolled binary min-heaps rather than
// container/heap instantiations: the interface indirection buys nothing
// here and the concrete types keep ScanOnce allocation-light.
//
// Both are lazy: entries are never removed from the middle. A lease that
// settles before its deadline leaves a stale tokenAt behind; ScanOnce
// drops it when the pop misses the lease table. Staleness is bounded by
// one TTL window of issued tokens.

// tokenAt is a lease deadline: when at passes, token should be reclaimed
// (if still outstanding).
type tokenAt struct {
	at    time.Time
	token uint64
}

type tokenHeap struct{ h []tokenAt }

func (p *tokenHeap) len() int       { return len(p.h) }
func (p *tokenHeap) min() tokenAt   { return p.h[0] }
func (p *tokenHeap) push(e tokenAt) { p.h = append(p.h, e); siftUpToken(p.h) }
func (p *tokenHeap) pop() tokenAt {
	top := p.h[0]
	last := len(p.h) - 1
	p.h[0] = p.h[last]
	p.h = p.h[:last]
	siftDownToken(p.h)
	return top
}

func siftUpToken(h []tokenAt) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].at.Before(h[parent].at) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDownToken(h []tokenAt) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(h) && h[l].at.Before(h[least].at) {
			least = l
		}
		if r < len(h) && h[r].at.Before(h[least].at) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// jobAt is a delayed job: when at passes, j moves back to its queue.
type jobAt struct {
	at time.Time
	j  *job
}

type jobHeap struct{ h []jobAt }

func (p *jobHeap) len() int     { return len(p.h) }
func (p *jobHeap) min() jobAt   { return p.h[0] }
func (p *jobHeap) push(e jobAt) { p.h = append(p.h, e); siftUpJob(p.h) }
func (p *jobHeap) pop() jobAt {
	top := p.h[0]
	last := len(p.h) - 1
	p.h[0] = p.h[last]
	p.h[last] = jobAt{} // drop the *job reference
	p.h = p.h[:last]
	siftDownJob(p.h)
	return top
}

func siftUpJob(h []jobAt) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].at.Before(h[parent].at) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDownJob(h []jobAt) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(h) && h[l].at.Before(h[least].at) {
			least = l
		}
		if r < len(h) && h[r].at.Before(h[least].at) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
