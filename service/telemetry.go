package service

import (
	"net/http"
	"sort"
	"strconv"

	"repro/internal/obs/export"
)

// Gauge names the service's /metrics page emits alongside the exported
// obs counters and histograms. sbqtop and the CI metrics-smoke job select
// on these; keep them stable.
const (
	MetricReady    = "sbq_ready"           // 1 while serving, else 0
	MetricInFlight = "sbq_inflight_leases" // outstanding lease tokens
	MetricTenants  = "sbq_tenants"         // live tenant count

	// Per-tenant depth breakdown, labels {tenant, queue}. Gauges on
	// purpose: depth falls as jobs settle, and the queue label follows the
	// tenant's current backend across SwapBackend (counters never carry
	// the queue label precisely because it can change mid-run, which would
	// break scrape-to-scrape monotonicity).
	MetricTenantDepth   = "sbq_tenant_depth"
	MetricTenantQueued  = "sbq_tenant_queued"
	MetricTenantLeased  = "sbq_tenant_leased"
	MetricTenantDelayed = "sbq_tenant_delayed"
	MetricTenantDead    = "sbq_tenant_dead"
)

// Ready reports whether the service is accepting new work. It is the
// GET /readyz predicate: false from the moment Shutdown flips the drain
// fence (and trivially true only after New has finished restoring any
// checkpoint, since New returns the *Service).
func (s *Service) Ready() bool { return s.state.Load() == srvServing }

// MetricsCollection returns the service's Prometheus collection:
//
//   - per-tenant counter and histogram snapshots, label {tenant} — the
//     service lifecycle counters plus the tenant's queue counters, which
//     the tenant tee aggregates (see tenant.rec);
//   - per-shard queue snapshots, labels {tenant, shard} — the paper's
//     CAS-failure and retry signals at the granularity they occur;
//   - depth/readiness gauges, labels {tenant, queue} (see Metric*).
//
// The collection is built once and cached: its per-source delta windows
// must persist across scrapes for the windowed rate gauges
// (sbq_cas_failure_rate and friends) to measure scrape-to-scrape
// intervals. Snapshot sources are gathered per scrape, so tenants created
// after the first scrape appear automatically.
func (s *Service) MetricsCollection() *export.Collection {
	s.metricsOnce.Do(func() {
		c := export.NewCollection()
		c.AddSnapshots(s.tenantSnapshots)
		c.AddSnapshots(s.shardSnapshots)
		c.AddGauges(s.gaugeSamples)
		s.metrics = c
	})
	return s.metrics
}

// MetricsHandler returns the GET /metrics handler (Prometheus text
// exposition 0.0.4).
func (s *Service) MetricsHandler() http.Handler { return s.MetricsCollection() }

// tenantList snapshots the tenant table, sorted by name for stable
// exposition and stats ordering.
func (s *Service) tenantList() []*tenant {
	s.tmu.Lock()
	out := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t)
	}
	s.tmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (s *Service) tenantSnapshots() []export.LabeledSnapshot {
	var out []export.LabeledSnapshot
	for _, t := range s.tenantList() {
		out = append(out, export.LabeledSnapshot{
			Labels: export.Labels{"tenant": t.name},
			Snap:   t.stats.Snapshot(),
		})
	}
	return out
}

func (s *Service) shardSnapshots() []export.LabeledSnapshot {
	var out []export.LabeledSnapshot
	for _, t := range s.tenantList() {
		for i, st := range t.shardStatsList() {
			out = append(out, export.LabeledSnapshot{
				Labels: export.Labels{"tenant": t.name, "shard": strconv.Itoa(i)},
				Snap:   st.Snapshot(),
			})
		}
	}
	return out
}

func (s *Service) gaugeSamples() []export.Sample {
	st := s.Stats()
	ready := 0.0
	if st.State == "serving" {
		ready = 1
	}
	out := []export.Sample{
		{Name: MetricReady, Value: ready},
		{Name: MetricInFlight, Value: float64(st.InFlight)},
		{Name: MetricTenants, Value: float64(len(st.Tenants))},
	}
	for _, ts := range st.Tenants {
		l := export.Labels{"tenant": ts.Tenant, "queue": ts.Queue}
		out = append(out,
			export.Sample{Name: MetricTenantDepth, Labels: l, Value: float64(ts.Depth)},
			export.Sample{Name: MetricTenantQueued, Labels: l, Value: float64(ts.Queued)},
			export.Sample{Name: MetricTenantLeased, Labels: l, Value: float64(ts.Leased)},
			export.Sample{Name: MetricTenantDelayed, Labels: l, Value: float64(ts.Delayed)},
			export.Sample{Name: MetricTenantDead, Labels: l, Value: float64(ts.Dead)},
		)
	}
	return out
}
