package service

import (
	"log/slog"
	"sync/atomic"
	"time"
)

// logKind indexes the per-kind sampling counters: each high-rate job event
// samples independently, so a flood of submits cannot starve lease or ack
// records out of the log.
type logKind int

const (
	logSubmit logKind = iota
	logLease
	logAck
	logNack
	logExpire
	nLogKinds
)

// srvLogger emits the service's structured lifecycle records through
// log/slog with per-event-kind sampling. High-rate kinds (submit, lease,
// ack, nack, expire) log 1 in every `every` occurrences — the first
// occurrence always logs, so low-traffic runs still show every kind.
// Rare, high-signal records (dead-letter, reject, restore, shutdown,
// backend swap) are never sampled.
//
// A nil *srvLogger is valid and silent; every method nil-checks its
// receiver, so call sites need no guard.
type srvLogger struct {
	l     *slog.Logger
	every uint64
	n     [nLogKinds]atomic.Uint64
}

// newSrvLogger wraps l, or returns nil (disabled) when l is nil.
func newSrvLogger(l *slog.Logger, every int) *srvLogger {
	if l == nil {
		return nil
	}
	if every < 1 {
		every = 1
	}
	return &srvLogger{l: l, every: uint64(every)}
}

// sample reports whether this occurrence of kind should be logged.
func (sl *srvLogger) sample(k logKind) bool {
	return (sl.n[k].Add(1)-1)%sl.every == 0
}

func (sl *srvLogger) submit(tenant string, id uint64) {
	if sl == nil || !sl.sample(logSubmit) {
		return
	}
	sl.l.Info("submit", "tenant", tenant, "job", id)
}

func (sl *srvLogger) lease(tenant string, id, token uint64, attempts int) {
	if sl == nil || !sl.sample(logLease) {
		return
	}
	sl.l.Info("lease", "tenant", tenant, "job", id, "token", token, "attempt", attempts)
}

func (sl *srvLogger) ack(tenant string, id, latencyNS uint64) {
	if sl == nil || !sl.sample(logAck) {
		return
	}
	sl.l.Info("ack", "tenant", tenant, "job", id, "latency", time.Duration(latencyNS))
}

func (sl *srvLogger) nack(tenant string, id uint64) {
	if sl == nil || !sl.sample(logNack) {
		return
	}
	sl.l.Info("nack", "tenant", tenant, "job", id)
}

func (sl *srvLogger) expire(tenant string, id uint64) {
	if sl == nil || !sl.sample(logExpire) {
		return
	}
	sl.l.Warn("lease expired", "tenant", tenant, "job", id)
}

func (sl *srvLogger) dlq(tenant string, id uint64, attempts int) {
	if sl == nil {
		return
	}
	sl.l.Warn("dead-lettered", "tenant", tenant, "job", id, "attempts", attempts)
}

func (sl *srvLogger) reject(tenant string, depth, quota int64) {
	if sl == nil {
		return
	}
	sl.l.Warn("backpressure reject", "tenant", tenant, "depth", depth, "quota", quota)
}

// lifecycle logs an unsampled service-level record (restore, shutdown,
// backend swap).
func (sl *srvLogger) lifecycle(msg string, args ...any) {
	if sl == nil {
		return
	}
	sl.l.Info(msg, args...)
}
