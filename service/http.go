package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns sbqd's HTTP surface (go 1.22 method+path patterns):
//
//	POST /v1/submit   {"tenant": "t", "payload": ...}        → 200 Job
//	POST /v1/lease    {"tenant": "t"}                        → 200 Lease | 204 empty
//	POST /v1/ack      {"token": N}                           → 200
//	POST /v1/nack     {"token": N}                           → 200
//	GET  /v1/stats                                           → 200 StatsSnapshot
//	GET  /v1/dlq?tenant=t                                    → 200 [Job]
//	GET  /metrics                                            → 200 Prometheus text 0.0.4
//	GET  /healthz                                            → 200 serving | 503 otherwise
//	GET  /readyz                                             → 200 ready | 503 draining/stopped
//
// healthz and readyz currently agree (both flip at the drain fence);
// they are separate endpoints because their contracts differ — healthz
// means "the process is alive enough to answer", readyz means "route new
// work here" — and orchestration (the chaos harness's restart phase, a
// load balancer) keys on the latter.
//
// Error mapping: over-quota Submit → 429 with Retry-After; tenant cap
// reached → 429; draining → 503 with Retry-After; stopped → 503;
// unknown/settled token → 409; malformed request → 400.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/ack", s.handleSettle(s.Ack))
	mux.HandleFunc("POST /v1/nack", s.handleSettle(s.Nack))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/dlq", s.handleDLQ)
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

type submitRequest struct {
	Tenant  string          `json:"tenant"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

type leaseRequest struct {
	Tenant string `json:"tenant"`
}

type settleRequest struct {
	Token uint64 `json:"token"`
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // best effort: headers are out, the client is gone on error
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// writeServiceError maps service sentinel errors to status codes shared by
// every mutating endpoint.
func writeServiceError(w http.ResponseWriter, err error, retryAfter time.Duration) bool {
	var bp *BackpressureError
	switch {
	case errors.As(err, &bp):
		w.Header().Set("Retry-After", strconv.Itoa(int(bp.RetryAfter.Seconds()+1)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrTenantLimit):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter.Seconds()+1)))
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrStopped):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrNoSuchLease):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		return false
	}
	return true
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, errors.New("tenant is required"))
		return
	}
	job, err := s.Submit(req.Tenant, req.Payload)
	if writeServiceError(w, err, s.cfg.LeaseTTL) {
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, errors.New("tenant is required"))
		return
	}
	lease, ok, err := s.Lease(req.Tenant)
	if writeServiceError(w, err, s.cfg.LeaseTTL) {
		return
	}
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, lease)
}

func (s *Service) handleSettle(settle func(uint64) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req settleRequest
		if !decodeBody(w, r, &req) {
			return
		}
		if req.Token == 0 {
			writeError(w, http.StatusBadRequest, errors.New("token is required"))
			return
		}
		if writeServiceError(w, settle(req.Token), s.cfg.LeaseTTL) {
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	}
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleDLQ(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	if tenant == "" {
		writeError(w, http.StatusBadRequest, errors.New("tenant query parameter is required"))
		return
	}
	jobs := s.DeadLetters(tenant)
	if jobs == nil {
		jobs = []Job{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.state.Load() == srvServing {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	writeError(w, http.StatusServiceUnavailable, ErrDraining)
}

func (s *Service) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.Ready() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
		return
	}
	writeError(w, http.StatusServiceUnavailable, ErrDraining)
}
