// Package repro's root benchmarks regenerate every figure of the paper's
// evaluation as testing.B benchmarks, one family per figure:
//
//	BenchmarkFig1_*    TxCAS vs FAA latency (Figure 1)
//	BenchmarkFig5_*    enqueue-only latency per queue (Figure 5)
//	BenchmarkFig6_*    dequeue-only latency per queue (Figure 6)
//	BenchmarkFig7_*    mixed workload per queue (Figure 7)
//	BenchmarkAblation_* §4.1 delay sweep, §5.3.4 basket sweep, §3.4.1 fix
//	BenchmarkNative_*  the native Go queues on real hardware
//
// Simulated benchmarks report sim_ns_per_op (simulated nanoseconds per
// queue operation, the paper's y-axis) alongside Go's wall-clock ns/op,
// which only measures how fast the simulator itself runs.
package repro

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/queue/registry"
	"repro/queue/sbq"
)

// benchOpts keeps simulated benchmarks small enough for go test -bench.
func benchOpts(threads int) harness.Options {
	return harness.Options{OpsPerThread: 100, Reps: 1, ThreadCounts: []int{threads}}
}

func reportSim(b *testing.B, results []harness.Result) {
	b.Helper()
	if len(results) == 0 {
		b.Fatal("no results")
	}
	b.ReportMetric(results[0].NSPerOp, "sim_ns_per_op")
	b.ReportMetric(results[0].Mops, "sim_Mops")
}

// --------------------------------------------------------------------------
// Figure 1: TxCAS vs FAA.

func BenchmarkFig1(b *testing.B) {
	for _, threads := range []int{1, 4, 16, 44} {
		for _, series := range []string{"FAA", "TxCAS"} {
			series := series
			b.Run(fmt.Sprintf("%s/threads=%d", series, threads), func(b *testing.B) {
				var last []harness.Result
				for i := 0; i < b.N; i++ {
					res := harness.Run(harness.Fig1{}, benchOpts(threads)).Results
					for _, r := range res {
						if r.Series == series {
							last = []harness.Result{r}
						}
					}
				}
				reportSim(b, last)
			})
		}
	}
}

// --------------------------------------------------------------------------
// Figures 5-7: the five evaluated queues.

func BenchmarkFig5_EnqueueOnly(b *testing.B) {
	for _, v := range harness.AllVariants {
		v := v
		for _, threads := range []int{4, 16, 44} {
			b.Run(fmt.Sprintf("%s/threads=%d", v, threads), func(b *testing.B) {
				var last []harness.Result
				for i := 0; i < b.N; i++ {
					last = harness.Run(harness.EnqueueOnly{Variants: []harness.Variant{v}}, benchOpts(threads)).Results
				}
				reportSim(b, last)
			})
		}
	}
}

func BenchmarkFig6_DequeueOnly(b *testing.B) {
	for _, v := range harness.AllVariants {
		v := v
		for _, threads := range []int{4, 16, 44} {
			b.Run(fmt.Sprintf("%s/threads=%d", v, threads), func(b *testing.B) {
				var last []harness.Result
				for i := 0; i < b.N; i++ {
					last = harness.Run(harness.DequeueOnly{Variants: []harness.Variant{v}}, benchOpts(threads)).Results
				}
				reportSim(b, last)
			})
		}
	}
}

func BenchmarkFig7_Mixed(b *testing.B) {
	for _, v := range harness.AllVariants {
		v := v
		for _, threads := range []int{8, 44} {
			b.Run(fmt.Sprintf("%s/threads=%d", v, threads), func(b *testing.B) {
				var last []harness.Result
				for i := 0; i < b.N; i++ {
					last = harness.Run(harness.Mixed{Variants: []harness.Variant{v}}, benchOpts(threads)).Results
				}
				reportSim(b, last)
			})
		}
	}
}

// --------------------------------------------------------------------------
// Ablations.

func BenchmarkAblation_DelaySweep(b *testing.B) {
	for _, delayNS := range []float64{0, 270, 540} {
		delayNS := delayNS
		b.Run(fmt.Sprintf("delay=%.0fns/threads=32", delayNS), func(b *testing.B) {
			var last []harness.Result
			for i := 0; i < b.N; i++ {
				last = harness.Run(harness.DelaySweep{DelaysNS: []float64{delayNS}, ThreadCounts: []int{32}}, benchOpts(32)).Results
			}
			reportSim(b, last)
		})
	}
}

func BenchmarkAblation_BasketSize(b *testing.B) {
	for _, size := range []int{8, 44, 88} {
		size := size
		b.Run(fmt.Sprintf("B=%d/threads=8", size), func(b *testing.B) {
			var last []harness.Result
			for i := 0; i < b.N; i++ {
				last = harness.Run(harness.BasketSweep{BasketSizes: []int{size}, Threads: 8}, benchOpts(8)).Results
			}
			reportSim(b, last)
		})
	}
}

func BenchmarkAblation_TrippedWriterFix(b *testing.B) {
	for _, cfg := range []string{"no-delay", "no-delay+fix", "cross-socket-delay"} {
		cfg := cfg
		b.Run(cfg, func(b *testing.B) {
			var ns float64
			var tripped uint64
			for i := 0; i < b.N; i++ {
				for _, r := range harness.Run(harness.FixAblation{}, benchOpts(0)).Fix {
					if r.Label == cfg {
						ns, tripped = r.NSPerOp, r.TrippedWriters
					}
				}
			}
			b.ReportMetric(ns, "sim_ns_per_op")
			b.ReportMetric(float64(tripped), "tripped_writers")
		})
	}
}

// BenchmarkExtension_PartitionedDequeue measures the §8 future-work
// extension: SBQ-HTM dequeues with partitioned basket extraction vs the
// paper's single-FAA basket.
func BenchmarkExtension_PartitionedDequeue(b *testing.B) {
	for _, v := range []harness.Variant{harness.SBQHTM, harness.SBQHTMPart} {
		v := v
		b.Run(fmt.Sprintf("%s/threads=44", v), func(b *testing.B) {
			var last []harness.Result
			for i := 0; i < b.N; i++ {
				last = harness.Run(harness.DequeueOnly{Variants: []harness.Variant{v}}, benchOpts(44)).Results
			}
			reportSim(b, last)
		})
	}
}

// --------------------------------------------------------------------------
// Native companion benchmarks: the adoptable library on real hardware.
// Queue selection comes from queue/registry — one table shared with
// cmd/sbqbench and the conformance suite.

func BenchmarkNative_Enqueue(b *testing.B) {
	for _, name := range registry.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			inst, err := registry.Build(name, registry.Config{Producers: 1})
			if err != nil {
				b.Fatal(err)
			}
			q := inst.ProducerView(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(uint64(i) + 1)
			}
		})
	}
}

func BenchmarkNative_EnqueueDequeuePair(b *testing.B) {
	for _, name := range registry.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			inst, err := registry.Build(name, registry.Config{Producers: 1})
			if err != nil {
				b.Fatal(err)
			}
			q, cons := inst.ProducerView(0), inst.ConsumerView(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Enqueue(uint64(i) + 1)
				if _, ok := cons.Dequeue(); !ok {
					b.Fatal("unexpected empty")
				}
			}
		})
	}
}

func BenchmarkNative_ParallelMixed(b *testing.B) {
	for _, name := range registry.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			// RunParallel spawns GOMAXPROCS goroutines by default; size
			// the producer-view pool with generous headroom so each
			// goroutine gets a private view (SBQ handles must not be
			// shared).
			maxViews := 8*runtime.GOMAXPROCS(0) + 8
			inst, err := registry.Build(name, registry.Config{Producers: maxViews})
			if err != nil {
				b.Fatal(err)
			}
			cons := inst.ConsumerView(0)
			var next atomic.Int64
			var val atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(next.Add(1)) - 1
				q := inst.ProducerView(id % maxViews)
				for pb.Next() {
					q.Enqueue(val.Add(1))
					cons.Dequeue()
				}
			})
		})
	}
}

// BenchmarkNative_EnqueueBatch sweeps the batch size on the natively
// batch-capable hot queues: ns/op is per element, so the curve falling as
// k grows is the amortization (one FAA or linking CAS per batch) showing
// up directly.
func BenchmarkNative_EnqueueBatch(b *testing.B) {
	for _, name := range []string{"FAA-Queue", "SBQ-CAS", "Sharded-FAA"} {
		for _, k := range []int{1, 8, 64} {
			name, k := name, k
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				inst, err := registry.Build(name, registry.Config{Producers: 1, BatchHint: k})
				if err != nil {
					b.Fatal(err)
				}
				q := inst.ProducerView(0)
				vs := make([]uint64, k)
				for i := range vs {
					vs[i] = uint64(i) + 1
				}
				b.ResetTimer()
				for i := 0; i < b.N; i += k {
					q.EnqueueBatch(vs)
				}
			})
		}
	}
}

// BenchmarkNative_SBQAppendStrategies compares plain and delayed CAS
// try_append under parallel enqueue pressure (the SBQ-CAS tradeoff).
func BenchmarkNative_SBQAppendStrategies(b *testing.B) {
	strategies := []struct {
		name  string
		delay time.Duration
	}{
		{"PlainCAS", 0},
		{"DelayedCAS", registry.DelayedCASDelay},
	}
	for _, s := range strategies {
		s := s
		b.Run(s.name, func(b *testing.B) {
			maxViews := 8*runtime.GOMAXPROCS(0) + 8
			q := sbq.New[uint64](sbq.WithEnqueuers(maxViews), sbq.WithAppendDelay(s.delay))
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(next.Add(1)-1) % maxViews
				h := q.NewHandle()
				i := uint64(0)
				for pb.Next() {
					i++
					h.Enqueue(uint64(id+1)<<40 | i)
				}
			})
		})
	}
}

// BenchmarkSBQ measures the telemetry layer's overhead on the SBQ hot path
// under parallel mixed load. recorder=off (no WithRecorder) and
// recorder=nop (obs.Nop, normalized away at construction) must be within
// noise of each other — the disabled path is a single nil check per event
// site — while recorder=stats shows the cost of live counters.
func BenchmarkSBQ(b *testing.B) {
	recorders := []struct {
		name string
		rec  func() obs.Recorder
	}{
		{"recorder=off", func() obs.Recorder { return nil }},
		{"recorder=nop", func() obs.Recorder { return obs.Nop{} }},
		{"recorder=stats", func() obs.Recorder { return obs.New() }},
	}
	for _, rc := range recorders {
		rc := rc
		b.Run(rc.name, func(b *testing.B) {
			maxViews := 8*runtime.GOMAXPROCS(0) + 8
			q := sbq.New[uint64](sbq.WithEnqueuers(maxViews), sbq.WithRecorder(rc.rec()))
			var val atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				h := q.NewHandle()
				for pb.Next() {
					h.Enqueue(val.Add(1))
					q.Dequeue()
				}
			})
		})
	}
}
